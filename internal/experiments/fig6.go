package experiments

import (
	"fmt"
	"io"

	"scionmpr/internal/addr"
	"scionmpr/internal/bgp"
	"scionmpr/internal/core"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/metrics"
)

// QualitySeries is one curve of Figures 6a/6b: per-pair path quality (the
// max-flow over the disseminated path set, which equals both the minimum
// number of failing links disconnecting the pair and the capacity in
// multiples of inter-AS links).
type QualitySeries struct {
	Name   string
	Values []float64 // per sampled pair
}

// Fig6Result holds all curves of Figures 6a and 6b over the same sampled
// AS pairs of the core network.
type Fig6Result struct {
	Scale   Scale
	Pairs   [][2]addr.IA
	Optimum []float64
	Series  []QualitySeries
}

// RunFig6 reproduces Figures 6a/6b: path quality of BGP (best path plus
// multi-path), the baseline algorithm (storage limit per Scale), the
// diversity algorithm across PCB storage limits, and the optimum
// (max-flow on the full core topology).
func RunFig6(s Scale) (*Fig6Result, error) {
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	pairs := e.samplePairs()
	res := &Fig6Result{Scale: s, Pairs: pairs}

	for _, p := range pairs {
		res.Optimum = append(res.Optimum, float64(graphalg.OptimalFlow(e.core, p[0], p[1])))
	}

	quality := func(name string, pathSet func(src, dst addr.IA) [][]graphalg.PathLink) {
		qs := QualitySeries{Name: name}
		for _, p := range pairs {
			qs.Values = append(qs.Values, float64(graphalg.UnionFlow(pathSet(p[0], p[1]), p[0], p[1])))
		}
		res.Series = append(res.Series, qs)
	}

	// BGP with full multi-path support on the core members' original
	// relationship subgraph (the paper's best case for BGP).
	bgpRes, err := bgp.Run(bgp.DefaultConfig(e.coreSub))
	if err != nil {
		return nil, err
	}
	quality("BGP", bgpRes.PathSet)

	// SCION baseline with the standard storage limit.
	baseRun, err := e.runCore(core.NewBaseline(s.DissemLimit), s.StoreLimit)
	if err != nil {
		return nil, err
	}
	quality(fmt.Sprintf("SCION Baseline (%d)", s.StoreLimit), baseRun.PathSet)

	// Diversity across storage limits (0 = unlimited, the paper's ∞).
	for _, limit := range s.DiversityStoreLimits {
		run, err := e.runCore(core.NewDiversity(core.DefaultParams(s.DissemLimit)), limit)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("SCION Diversity (%d)", limit)
		if limit <= 0 {
			name = "SCION Diversity (inf)"
		}
		quality(name, run.PathSet)
	}
	return res, nil
}

// CapacityRatios returns, per series, the mean achieved fraction of the
// optimal capacity over all pairs — the §5.3 headline metric (99/97/95/82%
// across storage limits in the paper).
func (r *Fig6Result) CapacityRatios() map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Series {
		sum, n := 0.0, 0
		for i, v := range s.Values {
			if r.Optimum[i] <= 0 {
				continue
			}
			sum += v / r.Optimum[i]
			n++
		}
		if n > 0 {
			out[s.Name] = sum / float64(n)
		}
	}
	return out
}

// Print renders both figures: the CDF of per-pair quality (6a: minimum
// failing links; 6b: capacity — numerically identical by max-flow/min-cut)
// plus the capacity-ratio summary.
func (r *Fig6Result) Print(w io.Writer) {
	series := []metrics.Series{{Name: "Optimum", CDF: metrics.NewCDF(r.Optimum)}}
	for _, s := range r.Series {
		series = append(series, metrics.Series{Name: s.Name, CDF: metrics.NewCDF(s.Values)})
	}
	metrics.FprintCDFs(w, "Figure 6a/6b: path quality per AS pair (min failing links = capacity)", series)
	fmt.Fprintf(w, "\nmean fraction of optimal capacity (paper §5.3: diversity reaches\n82-99%% depending on the PCB storage limit, baseline and BGP below):\n")
	ratios := r.CapacityRatios()
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %-24s %.1f%%\n", s.Name, 100*ratios[s.Name])
	}
}
