package experiments

import (
	"fmt"
	"io"
	"time"

	"scionmpr/internal/core"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/metrics"
)

// AblationRow is one selector variant's overhead and path quality.
type AblationRow struct {
	Name string
	// Bytes is the total control-plane bytes of the run.
	Bytes uint64
	// Messages is the number of disseminated PCBs.
	Messages uint64
	// QualityFraction is the mean achieved fraction of optimal capacity.
	QualityFraction float64
}

// AblationResult compares the design choices DESIGN.md calls out, on one
// core network: the baseline, the shipped diversity algorithm, the
// paper-literal raw geometric mean, AS-level disjointness, and the
// latency-aware extension.
type AblationResult struct {
	Scale Scale
	Rows  []AblationRow
}

// RunAblation executes every variant on the same environment.
func RunAblation(s Scale) (*AblationResult, error) {
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	pairs := e.samplePairs()
	opt := make([]float64, len(pairs))
	for i, p := range pairs {
		opt[i] = float64(graphalg.OptimalFlow(e.core, p[0], p[1]))
	}

	raw := core.DefaultParams(s.DissemLimit)
	raw.RawGeoMean = true
	asd := core.DefaultParams(s.DissemLimit)
	asd.ASDisjoint = true

	variants := []struct {
		name    string
		factory core.Factory
	}{
		{"baseline", core.NewBaseline(s.DissemLimit)},
		{"diversity (default)", core.NewDiversity(core.DefaultParams(s.DissemLimit))},
		{"diversity (raw geomean)", core.NewDiversity(raw)},
		{"diversity (AS-disjoint)", core.NewDiversity(asd)},
		{"latency-aware", core.NewLatencyAware(s.DissemLimit, core.UniformLatency(10*time.Millisecond))},
	}

	res := &AblationResult{Scale: s}
	for _, v := range variants {
		run, err := e.runCore(v.factory, s.StoreLimit)
		if err != nil {
			return nil, err
		}
		var msgs uint64
		for _, srv := range run.Servers {
			msgs += srv.Originated + srv.Propagated
		}
		quality, n := 0.0, 0
		for i, p := range pairs {
			if opt[i] <= 0 {
				continue
			}
			quality += float64(run.Quality(p[0], p[1])) / opt[i]
			n++
		}
		if n > 0 {
			quality /= float64(n)
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:            v.name,
			Bytes:           run.TotalOverheadBytes(),
			Messages:        msgs,
			QualityFraction: quality,
		})
	}
	return res, nil
}

// Print renders the ablation table.
func (r *AblationResult) Print(w io.Writer) {
	t := &metrics.Table{Header: []string{"variant", "PCBs sent", "bytes", "quality (frac of optimum)"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Messages),
			fmt.Sprintf("%d", row.Bytes),
			fmt.Sprintf("%.1f%%", 100*row.QualityFraction),
		})
	}
	fmt.Fprintln(w, "== Ablation: selector variants on the same core network ==")
	t.Fprint(w)
}
