// Package deploy models the ISP deployment scenarios of paper §3.3
// (Figure 2) and the island-bridging transit service of §3.3's
// partial-deployment discussion:
//
//   - Native cross-connect: two SCION border routers on a dedicated
//     layer-2 circuit — BGP-free, full capacity for SCION.
//   - Router-on-a-stick: SCION packets IP-encapsulated over an existing
//     cross-connection shared with legacy traffic; a queueing discipline
//     must guarantee SCION a minimum bandwidth share so IP traffic cannot
//     crowd it out (the availability consideration of §3.2/§3.3).
//   - Redundant connection: both of the above combined, exposed either as
//     one logical link or as two SCION interfaces for multipath.
//
// BridgeIslands models the SCION-transit service: islands of SCION
// deployment joined through a transit provider's points of presence with
// native links, avoiding IP tunnels over the BGP Internet.
package deploy

import (
	"fmt"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

// Model is the deployment model of one inter-ISP connection.
type Model int

const (
	// NativeCrossConnect is Figure 2a: a dedicated layer-2 circuit
	// between SCION border routers.
	NativeCrossConnect Model = iota
	// RouterOnAStick is Figure 2b: SCION-in-IP over a shared legacy
	// cross-connection with host routes (still BGP-free).
	RouterOnAStick
	// Redundant is Figure 2c: both links combined.
	Redundant
)

func (m Model) String() string {
	switch m {
	case NativeCrossConnect:
		return "native-cross-connect"
	case RouterOnAStick:
		return "router-on-a-stick"
	case Redundant:
		return "redundant"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// IPEncapOverhead is the per-packet byte overhead of IP-encapsulating a
// SCION packet on a router-on-a-stick link (outer IPv4 + UDP header).
const IPEncapOverhead = 20 + 8

// Connection is one provisioned inter-ISP connection under a deployment
// model.
type Connection struct {
	Model Model
	// CapacityBps of the native circuit (NativeCrossConnect, Redundant).
	NativeCapacityBps float64
	// SharedCapacityBps of the legacy cross-connection
	// (RouterOnAStick, Redundant).
	SharedCapacityBps float64
	// MinSCIONShare is the fraction of the shared link the queueing
	// discipline reserves for SCION traffic (0 = best effort, which §3.3
	// warns against: an adversary could overload the shared link).
	MinSCIONShare float64
}

// Validate checks the configuration is coherent for its model.
func (c *Connection) Validate() error {
	switch c.Model {
	case NativeCrossConnect:
		if c.NativeCapacityBps <= 0 {
			return fmt.Errorf("deploy: native cross-connect needs native capacity")
		}
	case RouterOnAStick:
		if c.SharedCapacityBps <= 0 {
			return fmt.Errorf("deploy: router-on-a-stick needs shared capacity")
		}
	case Redundant:
		if c.NativeCapacityBps <= 0 || c.SharedCapacityBps <= 0 {
			return fmt.Errorf("deploy: redundant connection needs both capacities")
		}
	default:
		return fmt.Errorf("deploy: unknown model %d", c.Model)
	}
	if c.MinSCIONShare < 0 || c.MinSCIONShare > 1 {
		return fmt.Errorf("deploy: SCION share %v outside [0,1]", c.MinSCIONShare)
	}
	return nil
}

// BGPFree reports whether the connection is independent of BGP routing.
// All three models are BGP-free (the stick uses host routes); an IP
// tunnel across the public Internet would not be, which is why island
// bridging goes through the transit service instead.
func (c *Connection) BGPFree() bool { return true }

// SCIONThroughput computes the SCION goodput (bits/s) when scionOffered
// SCION load and ipOffered legacy load (both bits/s) hit the connection.
//
// Native circuits carry no IP traffic. On shared links the queueing
// discipline guarantees min(MinSCIONShare * capacity, offered); beyond
// the guarantee SCION competes proportionally for the remainder. The
// redundant model fills the native circuit first.
func (c *Connection) SCIONThroughput(scionOffered, ipOffered float64) float64 {
	if scionOffered <= 0 {
		return 0
	}
	switch c.Model {
	case NativeCrossConnect:
		return min2(scionOffered, c.NativeCapacityBps)
	case RouterOnAStick:
		return sharedThroughput(scionOffered, ipOffered, c.SharedCapacityBps, c.MinSCIONShare)
	case Redundant:
		native := min2(scionOffered, c.NativeCapacityBps)
		rest := scionOffered - native
		return native + sharedThroughput(rest, ipOffered, c.SharedCapacityBps, c.MinSCIONShare)
	}
	return 0
}

func sharedThroughput(scion, ip, capacity, share float64) float64 {
	if scion <= 0 || capacity <= 0 {
		return 0
	}
	if scion+ip <= capacity {
		return scion // no congestion
	}
	guaranteed := min2(scion, share*capacity)
	// The remaining capacity is shared proportionally to offered load.
	restCap := capacity - guaranteed
	restScion := scion - guaranteed
	if restScion <= 0 || restCap <= 0 {
		return min2(guaranteed, capacity)
	}
	fairScion := restCap * restScion / (restScion + ip)
	return guaranteed + fairScion
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// SCIONInterfaces returns how many SCION interface IDs the connection
// exposes: the redundant model may expose its two links separately,
// "enabling multipath selection for either of the links" (§3.3).
func (c *Connection) SCIONInterfaces(exposeSeparately bool) int {
	if c.Model == Redundant && exposeSeparately {
		return 2
	}
	return 1
}

// Provision adds the connection between two ASes to a topology, creating
// one inter-domain link per exposed SCION interface.
func Provision(g *topology.Graph, a, b addr.IA, rel topology.Rel, c *Connection, exposeSeparately bool) ([]*topology.Link, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.SCIONInterfaces(exposeSeparately)
	links := make([]*topology.Link, 0, n)
	for i := 0; i < n; i++ {
		l, err := g.Connect(a, b, rel)
		if err != nil {
			return nil, err
		}
		links = append(links, l)
	}
	return links, nil
}

// BridgeIslands connects every island AS to the transit provider's AS
// with native links (the SCION-transit service: "one-hop access" to a
// global BGP-free backbone with 100+ points of presence). The transit AS
// is created as a core AS if absent. It returns the created links.
func BridgeIslands(g *topology.Graph, transit addr.IA, islands []addr.IA) ([]*topology.Link, error) {
	g.AddAS(transit, true)
	var links []*topology.Link
	for _, isl := range islands {
		if g.AS(isl) == nil {
			return nil, fmt.Errorf("deploy: unknown island AS %s", isl)
		}
		rel := topology.ProviderOf
		if g.AS(isl).Core {
			rel = topology.Core
		}
		l, err := g.Connect(transit, isl, rel)
		if err != nil {
			return nil, err
		}
		links = append(links, l)
	}
	return links, nil
}
