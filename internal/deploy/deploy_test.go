package deploy

import (
	"testing"
	"testing/quick"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/core"
	"scionmpr/internal/topology"
)

const gbps = 1e9

func TestValidate(t *testing.T) {
	bad := []Connection{
		{Model: NativeCrossConnect},
		{Model: RouterOnAStick},
		{Model: Redundant, NativeCapacityBps: gbps},
		{Model: RouterOnAStick, SharedCapacityBps: gbps, MinSCIONShare: 1.5},
		{Model: Model(42), NativeCapacityBps: gbps},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	good := Connection{Model: Redundant, NativeCapacityBps: gbps, SharedCapacityBps: gbps, MinSCIONShare: 0.5}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if !good.BGPFree() {
		t.Error("deployment models must be BGP-free")
	}
}

func TestNativeThroughput(t *testing.T) {
	c := Connection{Model: NativeCrossConnect, NativeCapacityBps: gbps}
	if got := c.SCIONThroughput(0.4*gbps, 10*gbps); got != 0.4*gbps {
		t.Errorf("native ignores IP load: %v", got)
	}
	if got := c.SCIONThroughput(2*gbps, 0); got != gbps {
		t.Errorf("native caps at capacity: %v", got)
	}
	if c.SCIONThroughput(0, gbps) != 0 {
		t.Error("no offered SCION load must give 0")
	}
}

func TestStickGuaranteeUnderAdversarialIP(t *testing.T) {
	// §3.3: an adversary overloading the shared link with IP traffic must
	// not crowd SCION below the queueing discipline's guaranteed share.
	c := Connection{Model: RouterOnAStick, SharedCapacityBps: gbps, MinSCIONShare: 0.3}
	got := c.SCIONThroughput(0.5*gbps, 100*gbps)
	if got < 0.3*gbps {
		t.Errorf("SCION throughput %v below guaranteed 0.3 Gbps", got)
	}
	// Without a guarantee the adversary wins almost everything.
	open := Connection{Model: RouterOnAStick, SharedCapacityBps: gbps, MinSCIONShare: 0}
	starved := open.SCIONThroughput(0.5*gbps, 100*gbps)
	if starved > 0.05*gbps {
		t.Errorf("unprotected SCION throughput %v suspiciously high", starved)
	}
	// Uncongested: full offered load goes through.
	if got := c.SCIONThroughput(0.2*gbps, 0.3*gbps); got != 0.2*gbps {
		t.Errorf("uncongested stick = %v", got)
	}
}

func TestRedundantFillsNativeFirst(t *testing.T) {
	c := Connection{Model: Redundant, NativeCapacityBps: gbps, SharedCapacityBps: gbps, MinSCIONShare: 0.5}
	// 1.4 Gbps offered: 1 Gbps native + 0.4 via shared (uncongested).
	if got := c.SCIONThroughput(1.4*gbps, 0); got != 1.4*gbps {
		t.Errorf("redundant uncongested = %v", got)
	}
	// With adversarial IP, still at least native + guaranteed share.
	got := c.SCIONThroughput(2*gbps, 100*gbps)
	if got < 1.5*gbps {
		t.Errorf("redundant under attack = %v, want >= 1.5 Gbps", got)
	}
}

func TestThroughputNeverExceedsOfferedOrCapacity(t *testing.T) {
	f := func(scion, ip float64, share float64) bool {
		if scion < 0 {
			scion = -scion
		}
		if ip < 0 {
			ip = -ip
		}
		share = share - float64(int(share)) // fractional part
		if share < 0 {
			share = -share
		}
		c := Connection{Model: RouterOnAStick, SharedCapacityBps: gbps, MinSCIONShare: share}
		got := c.SCIONThroughput(scion, ip)
		return got <= scion+1e-6 && got <= gbps+1e-6 && got >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSCIONInterfacesAndProvision(t *testing.T) {
	c := Connection{Model: Redundant, NativeCapacityBps: gbps, SharedCapacityBps: gbps}
	if c.SCIONInterfaces(true) != 2 || c.SCIONInterfaces(false) != 1 {
		t.Error("redundant interface exposure wrong")
	}
	g := topology.New()
	a := addr.MustIA(1, 1)
	b := addr.MustIA(1, 2)
	g.AddAS(a, true)
	g.AddAS(b, true)
	links, err := Provision(g, a, b, topology.Core, &c, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 || len(g.LinksBetween(a, b)) != 2 {
		t.Errorf("provisioned %d links", len(links))
	}
	bad := Connection{Model: NativeCrossConnect}
	if _, err := Provision(g, a, b, topology.Core, &bad, false); err == nil {
		t.Error("invalid connection provisioned")
	}
}

func TestBridgeIslandsRestoresBeaconing(t *testing.T) {
	// Two SCION islands (disconnected core ASes); bridging them through
	// the transit service makes core beaconing span both.
	g := topology.New()
	i1 := addr.MustIA(1, 0xff00_0000_0100)
	i2 := addr.MustIA(2, 0xff00_0000_0200)
	g.AddAS(i1, true)
	g.AddAS(i2, true)
	transit := addr.MustIA(9, 0xff00_0000_0900)
	links, err := BridgeIslands(g, transit, []addr.IA{i1, i2})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d", len(links))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := beacon.DefaultRunConfig(g, beacon.CoreMode, core.NewBaseline(5), 10)
	cfg.Duration = time.Hour
	res, err := beacon.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PathSet(i1, i2)) == 0 || len(res.PathSet(i2, i1)) == 0 {
		t.Error("bridged islands cannot reach each other")
	}
	// Unknown island rejected.
	if _, err := BridgeIslands(g, transit, []addr.IA{addr.MustIA(7, 7)}); err == nil {
		t.Error("unknown island accepted")
	}
}

func TestModelStrings(t *testing.T) {
	for _, m := range []Model{NativeCrossConnect, RouterOnAStick, Redundant, Model(9)} {
		if m.String() == "" {
			t.Errorf("empty string for %d", m)
		}
	}
}
