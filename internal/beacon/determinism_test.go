package beacon

import (
	"testing"
	"time"

	"scionmpr/internal/chaos"
	"scionmpr/internal/core"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// detRun executes the determinism scenario once: diversity beaconing on
// a generated core topology under a seed-derived chaos schedule covering
// all four fault kinds, with the given worker count.
func detRun(t *testing.T, topo *topology.Graph, seed int64, workers int) [32]byte {
	t.Helper()
	cfg := DefaultRunConfig(topo, CoreMode, core.NewDiversity(core.DefaultParams(5)), 15)
	cfg.Duration = 90 * time.Minute
	cfg.Workers = workers
	end := sim.Time(cfg.Duration)
	links := make([]topology.LinkID, 0, len(topo.Links))
	for _, l := range topo.Links {
		links = append(links, l.ID)
	}
	ias := topo.IAs()
	sched := chaos.FlapChurn(seed, links, 4, end/6, end-end/6, 30*time.Second, 10*time.Minute)
	sched.Events = append(sched.Events,
		chaos.Event{Kind: chaos.Gray, Link: links[int(seed)%len(links)],
			At: end / 4, Down: 20 * time.Minute, Rate: 0.3},
		chaos.Event{Kind: chaos.Spike, Link: links[(int(seed)+1)%len(links)],
			At: end / 3, Down: 10 * time.Minute, Delay: 200 * time.Millisecond},
		chaos.Event{Kind: chaos.CrashAS, IA: ias[int(seed)%len(ias)],
			At: end / 2, Down: 15 * time.Minute},
	)
	cfg.Chaos = sched
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil || len(res.Chaos.Injections) == 0 {
		t.Fatal("chaos schedule not applied")
	}
	return res.Fingerprint()
}

// TestParallelRunDeterminism is the tentpole's contract: the same
// configuration — including a chaos schedule exercising link flaps,
// gray-failure RNG draws, latency spikes, and server crashes — must
// produce byte-identical results sequentially and with 2, 4, and 8
// workers, across seeds. Run with -race to also check the worker pool.
func TestParallelRunDeterminism(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 100
	p.Tier1 = 5
	full := topology.MustGenerate(p)
	coreTopo, err := topology.ExtractCore(full, 14)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3} {
		seq := detRun(t, coreTopo, seed, 1)
		for _, w := range []int{2, 4, 8} {
			if got := detRun(t, coreTopo, seed, w); got != seq {
				t.Errorf("seed %d: fingerprint with %d workers differs from sequential run", seed, w)
			}
		}
	}
}

// TestParallelMatchesSequentialIntraISD covers the second beaconing mode
// (down the provider hierarchy, with peer entries) without chaos.
func TestParallelMatchesSequentialIntraISD(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 80
	p.Tier1 = 4
	full := topology.MustGenerate(p)
	isd, err := topology.BuildISD(full, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) [32]byte {
		cfg := DefaultRunConfig(isd, IntraMode, core.NewDiversity(core.DefaultParams(5)), 15)
		cfg.Duration = time.Hour
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	seq := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); got != seq {
			t.Errorf("intra-ISD fingerprint with %d workers differs from sequential run", w)
		}
	}
}
