package beacon

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/core"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// All three selectors must deliver full core connectivity; their overhead
// must be ordered: latency/diversity (suppressing) < baseline (resending).
func TestAllSelectorsConnectivityAndOrdering(t *testing.T) {
	demo := topology.Demo()
	keep := map[addr.IA]bool{}
	for _, ia := range demo.CoreIAs() {
		keep[ia] = true
	}
	coreTopo := demo.Subgraph(keep)

	runSel := func(f core.Factory) *RunResult {
		cfg := DefaultRunConfig(coreTopo, CoreMode, f, 20)
		cfg.Duration = 3 * time.Hour
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := runSel(core.NewBaseline(5))
	div := runSel(core.NewDiversity(core.DefaultParams(5)))
	lat := runSel(core.NewLatencyAware(5, core.UniformLatency(5*time.Millisecond)))

	cores := coreTopo.CoreIAs()
	for name, res := range map[string]*RunResult{"baseline": base, "diversity": div, "latency": lat} {
		for _, s := range cores {
			for _, d := range cores {
				if s != d && len(res.PathSet(s, d)) == 0 {
					t.Errorf("%s: no paths %s -> %s", name, s, d)
				}
			}
		}
	}
	if div.TotalOverheadBytes() >= base.TotalOverheadBytes() {
		t.Errorf("diversity %d not below baseline %d", div.TotalOverheadBytes(), base.TotalOverheadBytes())
	}
	if lat.TotalOverheadBytes() >= base.TotalOverheadBytes() {
		t.Errorf("latency %d not below baseline %d", lat.TotalOverheadBytes(), base.TotalOverheadBytes())
	}
}

// The diversity algorithm also works for intra-ISD beaconing (the paper
// only runs the baseline there because intra-ISD is already cheap, but
// notes the diversity variant "would scale even better", §5.1).
func TestDiversityIntraISD(t *testing.T) {
	demo := topology.Demo()
	cfgB := DefaultRunConfig(demo, IntraMode, core.NewBaseline(5), 20)
	cfgB.Duration = 3 * time.Hour
	base, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	cfgD := DefaultRunConfig(demo, IntraMode, core.NewDiversity(core.DefaultParams(5)), 20)
	cfgD.Duration = 3 * time.Hour
	div, err := Run(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	// Same reachability...
	for _, ia := range demo.IAs() {
		if demo.AS(ia).Core {
			continue
		}
		gotB, gotD := 0, 0
		for _, c := range demo.CoreIAs() {
			if c.ISD != ia.ISD {
				continue
			}
			gotB += len(base.PathSet(c, ia))
			gotD += len(div.PathSet(c, ia))
		}
		if gotB > 0 && gotD == 0 {
			t.Errorf("diversity intra-ISD lost reachability at %s", ia)
		}
	}
	// ...at lower cost.
	if div.TotalOverheadBytes() >= base.TotalOverheadBytes() {
		t.Errorf("diversity intra %d not below baseline intra %d",
			div.TotalOverheadBytes(), base.TotalOverheadBytes())
	}
}

// PathSet must skip beacons whose links cannot be resolved against the
// topology (defensive path for corrupted stores).
func TestPathSetSkipsUnresolvable(t *testing.T) {
	demo := topology.Demo()
	keep := map[addr.IA]bool{}
	for _, ia := range demo.CoreIAs() {
		keep[ia] = true
	}
	coreTopo := demo.Subgraph(keep)
	cfg := DefaultRunConfig(coreTopo, CoreMode, core.NewBaseline(5), 20)
	cfg.Duration = time.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cores := coreTopo.CoreIAs()
	src, dst := cores[0], cores[1]
	before := len(res.PathSet(src, dst))
	if before == 0 {
		t.Fatal("no paths to corrupt")
	}
	// Inject a bogus beacon with a non-existent interface.
	store := res.Servers[dst].Store()
	bogus := seg.NewPCB(src, 999, 0, 2*sim.Time(res.Cfg.Lifetime))
	bogus.ASEntries = append(bogus.ASEntries, seg.ASEntry{
		Local: src,
		Hop:   seg.HopField{ConsEgress: 999},
	})
	store.Insert(0, bogus, 77)
	after := res.PathSet(src, dst)
	if len(after) != before {
		t.Errorf("unresolvable beacon changed path set: %d -> %d", before, len(after))
	}
	// Self path set is nil; unknown server nil.
	if res.PathSet(src, src) != nil {
		t.Error("self path set must be nil")
	}
	if res.PathSet(src, addr.MustIA(9, 9)) != nil {
		t.Error("unknown dst path set must be nil")
	}
}
