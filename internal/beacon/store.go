// Package beacon implements SCION beacon servers: PCB origination,
// reception, storage, and interval-driven propagation for both levels of
// the routing hierarchy — selective flooding among core ASes (core
// beaconing) and uni-directional dissemination down the provider-customer
// hierarchy (intra-ISD beaconing), paper §2.2 and §4.1. PCB selection is
// delegated to a core.Selector (baseline or path-diversity algorithm).
package beacon

import (
	"math"
	"sort"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// Entry is one stored beacon plus the ingress interface it arrived on
// (needed to build the local AS entry when propagating).
type Entry struct {
	PCB     *seg.PCB
	Ingress addr.IfID
	// ReceivedAt is when the beacon server stored this instance.
	ReceivedAt sim.Time
}

// Store holds received PCBs grouped by origin AS, bounded by the paper's
// "PCB storage limit, the maximum number of PCBs per origin AS to store at
// each beacon server" (§5.1). A newer instance of an already-stored path
// (same hop sequence and ingress) replaces the old one without consuming
// extra capacity. Limit <= 0 means unlimited (the paper's "∞" curves).
type Store struct {
	Limit    int
	byOrigin map[addr.IA]*originSet
	// origins caches the sorted non-empty origin list (nil = recompute);
	// propagation asks for it every tick but it only changes when an
	// origin appears or runs dry.
	origins []addr.IA
	// arena chunk-allocates entries and free recycles evicted slots, so
	// steady-state insert/evict churn costs one allocation per 64 entries
	// instead of one each — and the GC scans flat chunks, not a pointer
	// graph of individual entries.
	arena []Entry
	free  []*Entry
}

// originSet is one origin's entries plus the bookkeeping that keeps the
// full-store Insert path off O(Limit) map scans: a lower bound on the
// earliest stored expiry (no expired-entry sweep can succeed before it)
// and a cached worst entry (eviction candidate; nil = recompute).
// Both exploit that a stored entry's expiry only ever increases (in-place
// refresh of the same path), which can never make its eviction rank
// (worse) overtake the cached worst; the one case where the rank of the
// cached worst itself changes is handled by invalidating it.
type originSet struct {
	m         map[storeKey]*Entry
	minExpiry sim.Time
	worst     *Entry
	worstKey  storeKey
	// sorted mirrors m in Entries order (hops ascending, then hop key,
	// then ingress), maintained incrementally so the per-tick Entries
	// call is O(1) instead of a sort. nil = rebuild on demand.
	sorted []*Entry
}

const maxTime = sim.Time(math.MaxInt64)

// NewStore creates a store with the given per-origin limit.
func NewStore(limit int) *Store {
	return &Store{Limit: limit, byOrigin: map[addr.IA]*originSet{}}
}

// storeKey identifies a stored path: the hop sequence plus the arrival
// interface. The hops string is the PCB's cached HopsKey, so building a
// key allocates nothing (unlike the HopsKeyVia concatenation).
type storeKey struct {
	hops    string
	ingress addr.IfID
}

func entryKey(p *seg.PCB, ingress addr.IfID) storeKey {
	return storeKey{hops: p.HopsKey(), ingress: ingress}
}

// InsertResult reports what Insert did with a beacon. Outcomes where the
// presented PCB itself was not retained (everything except Stored and
// Refreshed) let the caller recycle the beacon's buffers.
type InsertResult uint8

const (
	// Stored: the beacon now occupies a new store entry.
	Stored InsertResult = iota
	// Refreshed: a newer instance of an already-stored path replaced the
	// old instance in place.
	Refreshed
	// DupStale: an instance of this path with an equal-or-later expiry is
	// already stored; the presented beacon was dropped (not a rejection —
	// the path is represented).
	DupStale
	// DropExpired: dead on arrival.
	DropExpired
	// DropWorse: the per-origin budget is full of entries at least as
	// good.
	DropWorse
)

// Accepted reports whether the path is represented in the store after
// the call (the legacy boolean Insert result).
func (r InsertResult) Accepted() bool { return r <= DupStale }

// Retained reports whether the store kept a reference to the presented
// PCB; when false the caller still owns it.
func (r InsertResult) Retained() bool { return r <= Refreshed }

// Insert stores a received beacon. It returns false when the beacon was
// dropped: expired on arrival, or the per-origin budget is full of
// entries at least as good.
func (s *Store) Insert(now sim.Time, p *seg.PCB, ingress addr.IfID) bool {
	return s.InsertPCB(now, p, ingress).Accepted()
}

// InsertPCB stores a received beacon and reports the precise outcome.
// "Better" prefers shorter paths, then later expiry, matching the
// baseline's path-length orientation while keeping fresh instances alive
// for the diversity algorithm.
func (s *Store) InsertPCB(now sim.Time, p *seg.PCB, ingress addr.IfID) InsertResult {
	if p.Expired(now) {
		return DropExpired
	}
	origin := p.Origin()
	os := s.byOrigin[origin]
	if os == nil {
		os = &originSet{m: map[storeKey]*Entry{}, minExpiry: maxTime}
		s.byOrigin[origin] = os
	}
	wasEmpty := len(os.m) == 0
	key := entryKey(p, ingress)
	if old, ok := os.m[key]; ok {
		// Same path: keep the instance with the later expiry. The sort
		// position is keyed on hops+ingress, both equal, so the refresh
		// mutates the entry in place — the steady-state hot path of
		// re-originated beacons costs no allocation and no map write.
		if p.Info.Expiry <= old.PCB.Info.Expiry {
			return DupStale
		}
		if old == os.worst {
			os.worst = nil // rank changed; recompute on demand
		}
		old.PCB, old.ReceivedAt = p, now
		os.noteInsert(old, key)
		return Refreshed
	}
	if s.Limit > 0 && len(os.m) >= s.Limit && now >= os.minExpiry {
		// Evict expired entries; only reachable once something can
		// actually have expired, so the steady state never scans here.
		os.sweep(s, now)
	}
	if s.Limit > 0 && len(os.m) >= s.Limit {
		// Replace the worst stored entry if the new beacon beats it.
		if os.worst == nil {
			os.findWorst()
		}
		if os.worst == nil || !betterPCB(p, os.worst.PCB) {
			return DropWorse
		}
		delete(os.m, os.worstKey)
		os.removeSorted(os.worst)
		s.release(os.worst)
		os.worst = nil
	}
	e := s.alloc(Entry{PCB: p, Ingress: ingress, ReceivedAt: now})
	os.m[key] = e
	os.insertSorted(e)
	os.noteInsert(e, key)
	if wasEmpty {
		s.origins = nil // a new origin became visible
	}
	return Stored
}

// alloc hands out an entry slot from the free list or the arena.
func (s *Store) alloc(v Entry) *Entry {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free = s.free[:n-1]
		*e = v
		return e
	}
	if len(s.arena) == 0 {
		s.arena = make([]Entry, 64)
	}
	e := &s.arena[0]
	s.arena = s.arena[1:]
	*e = v
	return e
}

// release returns an evicted entry's slot to the free list. Callers must
// have removed it from the origin's map and sorted order first.
func (s *Store) release(e *Entry) {
	*e = Entry{} // drop the PCB reference
	s.free = append(s.free, e)
}

// entryLess is the Entries presentation order: shortest paths first,
// then hop key, then ingress — a strict total order over stored entries
// (hops+ingress is the map key).
func entryLess(a, b *Entry) bool {
	if a.PCB.NumHops() != b.PCB.NumHops() {
		return a.PCB.NumHops() < b.PCB.NumHops()
	}
	ka, kb := a.PCB.HopsKey(), b.PCB.HopsKey()
	if ka != kb {
		return ka < kb
	}
	return a.Ingress < b.Ingress
}

// sortedIndex returns the position of (an entry ordering equal to) e in
// the sorted slice.
func (os *originSet) sortedIndex(e *Entry) int {
	return sort.Search(len(os.sorted), func(i int) bool { return !entryLess(os.sorted[i], e) })
}

// insertSorted places a newly stored entry into the maintained order; a
// nil slice stays nil (rebuilt lazily by Entries).
func (os *originSet) insertSorted(e *Entry) {
	if os.sorted == nil {
		return
	}
	i := os.sortedIndex(e)
	os.sorted = append(os.sorted, nil)
	copy(os.sorted[i+1:], os.sorted[i:])
	os.sorted[i] = e
}

// removeSorted drops an evicted entry from the maintained order.
func (os *originSet) removeSorted(e *Entry) {
	if os.sorted == nil {
		return
	}
	if i := os.sortedIndex(e); i < len(os.sorted) && os.sorted[i] == e {
		os.sorted = append(os.sorted[:i], os.sorted[i+1:]...)
		return
	}
	os.sorted = nil // inconsistent; rebuild lazily
}

// rebuildSorted recomputes the maintained order from scratch.
func (os *originSet) rebuildSorted() {
	os.sorted = make([]*Entry, 0, len(os.m))
	for _, e := range os.m {
		os.sorted = append(os.sorted, e)
	}
	sort.Slice(os.sorted, func(i, j int) bool { return entryLess(os.sorted[i], os.sorted[j]) })
}

// noteInsert maintains the cached bounds for a newly stored entry.
func (os *originSet) noteInsert(e *Entry, key storeKey) {
	if e.PCB.Info.Expiry < os.minExpiry {
		os.minExpiry = e.PCB.Info.Expiry
	}
	if os.worst != nil && worse(e, os.worst) {
		os.worst, os.worstKey = e, key
	}
}

// sweep deletes expired entries, releasing their slots, and recomputes
// the exact bounds.
func (os *originSet) sweep(s *Store, now sim.Time) {
	os.minExpiry = maxTime
	os.worst = nil
	os.sorted = nil // rebuilt lazily by Entries
	for k, e := range os.m {
		if e.PCB.Expired(now) {
			delete(os.m, k)
			s.release(e)
			continue
		}
		if e.PCB.Info.Expiry < os.minExpiry {
			os.minExpiry = e.PCB.Info.Expiry
		}
		if os.worst == nil || worse(e, os.worst) {
			os.worst, os.worstKey = e, k
		}
	}
}

// findWorst recomputes the cached eviction candidate.
func (os *originSet) findWorst() {
	os.worst = nil
	for k, e := range os.m {
		if os.worst == nil || worse(e, os.worst) {
			os.worst, os.worstKey = e, k
		}
	}
}

// worse orders entries for eviction: longer paths first, then earlier
// expiry, then hop key, then ingress. The order is strict and total over
// stored entries (hops+ingress is the map key), so the eviction choice
// never depends on map iteration order.
func worse(a, b *Entry) bool {
	if a.PCB.NumHops() != b.PCB.NumHops() {
		return a.PCB.NumHops() > b.PCB.NumHops()
	}
	if a.PCB.Info.Expiry != b.PCB.Info.Expiry {
		return a.PCB.Info.Expiry < b.PCB.Info.Expiry
	}
	if a.PCB.HopsKey() != b.PCB.HopsKey() {
		return a.PCB.HopsKey() > b.PCB.HopsKey()
	}
	return a.Ingress > b.Ingress
}

func betterPCB(p *seg.PCB, worst *seg.PCB) bool {
	if p.NumHops() != worst.NumHops() {
		return p.NumHops() < worst.NumHops()
	}
	return p.Info.Expiry > worst.Info.Expiry
}

// Origins lists origin ASes with stored beacons, sorted. The returned
// slice is shared (valid until the next store mutation); callers must not
// modify it.
func (s *Store) Origins() []addr.IA {
	if s.origins == nil {
		out := make([]addr.IA, 0, len(s.byOrigin))
		for ia, os := range s.byOrigin {
			if len(os.m) > 0 {
				out = append(out, ia)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		s.origins = out
	}
	return s.origins
}

// Entries returns the valid stored entries of one origin in deterministic
// order (shortest first, then hop key, then ingress). Expired entries are
// swept out on the way — callers only ever saw live entries, so dropping
// the dead ones eagerly changes nothing observable. The returned slice is
// shared (valid until the next store mutation); callers must not modify it.
func (s *Store) Entries(now sim.Time, origin addr.IA) []*Entry {
	os := s.byOrigin[origin]
	if os == nil || len(os.m) == 0 {
		return nil
	}
	if now >= os.minExpiry {
		os.sweep(s, now)
		if len(os.m) == 0 {
			s.origins = nil // the origin ran dry
			return nil
		}
	}
	if os.sorted == nil {
		os.rebuildSorted()
	}
	return os.sorted
}

// PCBs returns just the PCBs of Entries.
func (s *Store) PCBs(now sim.Time, origin addr.IA) []*seg.PCB {
	entries := s.Entries(now, origin)
	out := make([]*seg.PCB, len(entries))
	for i, e := range entries {
		out[i] = e.PCB
	}
	return out
}

// Prune removes expired beacons everywhere.
func (s *Store) Prune(now sim.Time) {
	for origin, os := range s.byOrigin {
		os.sweep(s, now)
		if len(os.m) == 0 {
			delete(s.byOrigin, origin)
		}
	}
	s.origins = nil
}

// RevokeLink drops every stored beacon whose path contains the given
// link and returns the number of beacons removed — the beacon-server
// side of the paper's path revocation (§4.1): the AS owning the failed
// link revokes affected segments so they are neither used nor propagated
// further.
func (s *Store) RevokeLink(link seg.LinkKey) int {
	dropped := 0
	for origin, os := range s.byOrigin {
		for k, e := range os.m {
			for _, lk := range e.PCB.Links() {
				if lk == link {
					delete(os.m, k)
					os.removeSorted(e)
					if e == os.worst {
						os.worst = nil
					}
					s.release(e)
					dropped++
					break
				}
			}
		}
		if len(os.m) == 0 {
			delete(s.byOrigin, origin)
		}
	}
	if dropped > 0 {
		s.origins = nil
	}
	return dropped
}

// Len returns the total number of stored beacons.
func (s *Store) Len() int {
	n := 0
	for _, os := range s.byOrigin {
		n += len(os.m)
	}
	return n
}
