// Package beacon implements SCION beacon servers: PCB origination,
// reception, storage, and interval-driven propagation for both levels of
// the routing hierarchy — selective flooding among core ASes (core
// beaconing) and uni-directional dissemination down the provider-customer
// hierarchy (intra-ISD beaconing), paper §2.2 and §4.1. PCB selection is
// delegated to a core.Selector (baseline or path-diversity algorithm).
package beacon

import (
	"sort"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// Entry is one stored beacon plus the ingress interface it arrived on
// (needed to build the local AS entry when propagating).
type Entry struct {
	PCB     *seg.PCB
	Ingress addr.IfID
	// ReceivedAt is when the beacon server stored this instance.
	ReceivedAt sim.Time
}

// Store holds received PCBs grouped by origin AS, bounded by the paper's
// "PCB storage limit, the maximum number of PCBs per origin AS to store at
// each beacon server" (§5.1). A newer instance of an already-stored path
// (same hop sequence and ingress) replaces the old one without consuming
// extra capacity. Limit <= 0 means unlimited (the paper's "∞" curves).
type Store struct {
	Limit    int
	byOrigin map[addr.IA]map[string]*Entry
}

// NewStore creates a store with the given per-origin limit.
func NewStore(limit int) *Store {
	return &Store{Limit: limit, byOrigin: map[addr.IA]map[string]*Entry{}}
}

func entryKey(p *seg.PCB, ingress addr.IfID) string {
	return p.HopsKeyVia(ingress) // hop sequence + arrival interface
}

// Insert stores a received beacon. It returns false when the beacon was
// dropped: expired on arrival, or the per-origin budget is full of
// entries at least as good. "Better" prefers shorter paths, then later
// expiry, matching the baseline's path-length orientation while keeping
// fresh instances alive for the diversity algorithm.
func (s *Store) Insert(now sim.Time, p *seg.PCB, ingress addr.IfID) bool {
	if p.Expired(now) {
		return false
	}
	origin := p.Origin()
	m := s.byOrigin[origin]
	if m == nil {
		m = map[string]*Entry{}
		s.byOrigin[origin] = m
	}
	key := entryKey(p, ingress)
	if old, ok := m[key]; ok {
		// Same path: keep the instance with the later expiry.
		if p.Info.Expiry > old.PCB.Info.Expiry {
			m[key] = &Entry{PCB: p, Ingress: ingress, ReceivedAt: now}
		}
		return true
	}
	if s.Limit > 0 && len(m) >= s.Limit {
		// Evict expired entries first.
		for k, e := range m {
			if e.PCB.Expired(now) {
				delete(m, k)
			}
		}
	}
	if s.Limit > 0 && len(m) >= s.Limit {
		// Replace the worst stored entry if the new beacon beats it.
		worstKey := ""
		var worst *Entry
		for k, e := range m {
			if worst == nil || worse(e, worst) {
				worstKey, worst = k, e
			}
		}
		if worst == nil || !betterPCB(p, worst.PCB) {
			return false
		}
		delete(m, worstKey)
	}
	m[key] = &Entry{PCB: p, Ingress: ingress, ReceivedAt: now}
	return true
}

// worse orders entries for eviction: longer paths first, then earlier
// expiry, then key order via pointer-stable comparison on hops.
func worse(a, b *Entry) bool {
	if a.PCB.NumHops() != b.PCB.NumHops() {
		return a.PCB.NumHops() > b.PCB.NumHops()
	}
	if a.PCB.Info.Expiry != b.PCB.Info.Expiry {
		return a.PCB.Info.Expiry < b.PCB.Info.Expiry
	}
	return a.PCB.HopsKey() > b.PCB.HopsKey()
}

func betterPCB(p *seg.PCB, worst *seg.PCB) bool {
	if p.NumHops() != worst.NumHops() {
		return p.NumHops() < worst.NumHops()
	}
	return p.Info.Expiry > worst.Info.Expiry
}

// Origins lists origin ASes with stored beacons, sorted.
func (s *Store) Origins() []addr.IA {
	out := make([]addr.IA, 0, len(s.byOrigin))
	for ia, m := range s.byOrigin {
		if len(m) > 0 {
			out = append(out, ia)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Entries returns the valid stored entries of one origin in deterministic
// order (shortest first, then hop key).
func (s *Store) Entries(now sim.Time, origin addr.IA) []*Entry {
	m := s.byOrigin[origin]
	if len(m) == 0 {
		return nil
	}
	out := make([]*Entry, 0, len(m))
	for _, e := range m {
		if !e.PCB.Expired(now) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PCB.NumHops() != out[j].PCB.NumHops() {
			return out[i].PCB.NumHops() < out[j].PCB.NumHops()
		}
		ki, kj := out[i].PCB.HopsKey(), out[j].PCB.HopsKey()
		if ki != kj {
			return ki < kj
		}
		return out[i].Ingress < out[j].Ingress
	})
	return out
}

// PCBs returns just the PCBs of Entries.
func (s *Store) PCBs(now sim.Time, origin addr.IA) []*seg.PCB {
	entries := s.Entries(now, origin)
	out := make([]*seg.PCB, len(entries))
	for i, e := range entries {
		out[i] = e.PCB
	}
	return out
}

// Prune removes expired beacons everywhere.
func (s *Store) Prune(now sim.Time) {
	for origin, m := range s.byOrigin {
		for k, e := range m {
			if e.PCB.Expired(now) {
				delete(m, k)
			}
		}
		if len(m) == 0 {
			delete(s.byOrigin, origin)
		}
	}
}

// RevokeLink drops every stored beacon whose path contains the given
// link and returns the number of beacons removed — the beacon-server
// side of the paper's path revocation (§4.1): the AS owning the failed
// link revokes affected segments so they are neither used nor propagated
// further.
func (s *Store) RevokeLink(link seg.LinkKey) int {
	dropped := 0
	for origin, m := range s.byOrigin {
		for k, e := range m {
			for _, lk := range e.PCB.Links() {
				if lk == link {
					delete(m, k)
					dropped++
					break
				}
			}
		}
		if len(m) == 0 {
			delete(s.byOrigin, origin)
		}
	}
	return dropped
}

// Len returns the total number of stored beacons.
func (s *Store) Len() int {
	n := 0
	for _, m := range s.byOrigin {
		n += len(m)
	}
	return n
}
