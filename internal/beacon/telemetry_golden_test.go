package beacon

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"scionmpr/internal/chaos"
	"scionmpr/internal/core"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// goldenRun executes the telemetry determinism scenario: diversity core
// beaconing under a seed-derived chaos schedule (all four fault kinds),
// with a registry and tracer attached, returning the full deterministic
// snapshot and trace JSONL as bytes.
func goldenRun(t *testing.T, topo *topology.Graph, seed int64, workers int) (snapshot, trace string, dropped uint64) {
	t.Helper()
	cfg := DefaultRunConfig(topo, CoreMode, core.NewDiversity(core.DefaultParams(5)), 15)
	cfg.Duration = 60 * time.Minute
	cfg.Workers = workers
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.Tracer = telemetry.NewTracer(1 << 15)
	end := sim.Time(cfg.Duration)
	links := make([]topology.LinkID, 0, len(topo.Links))
	for _, l := range topo.Links {
		links = append(links, l.ID)
	}
	ias := topo.IAs()
	sched := chaos.FlapChurn(seed, links, 4, end/6, end-end/6, 30*time.Second, 10*time.Minute)
	sched.Events = append(sched.Events,
		chaos.Event{Kind: chaos.Gray, Link: links[int(seed)%len(links)],
			At: end / 4, Down: 15 * time.Minute, Rate: 0.3},
		chaos.Event{Kind: chaos.Spike, Link: links[(int(seed)+1)%len(links)],
			At: end / 3, Down: 10 * time.Minute, Delay: 200 * time.Millisecond},
		chaos.Event{Kind: chaos.CrashAS, IA: ias[int(seed)%len(ias)],
			At: end / 2, Down: 10 * time.Minute},
	)
	cfg.Chaos = sched
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var snap, tr bytes.Buffer
	if err := cfg.Telemetry.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.WriteJSONL(&tr); err != nil {
		t.Fatal(err)
	}
	return snap.String(), tr.String(), cfg.Tracer.Dropped
}

// TestTelemetryGoldenDeterminism is the telemetry layer's headline
// contract: with chaos faults injected, the deterministic metric
// snapshot and the trace event stream must be byte-identical for 1, 2,
// 4 and 8 workers, across seeds. Run with -race in CI.
func TestTelemetryGoldenDeterminism(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 100
	p.Tier1 = 5
	full := topology.MustGenerate(p)
	coreTopo, err := topology.ExtractCore(full, 14)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2} {
		seqSnap, seqTrace, seqDropped := goldenRun(t, coreTopo, seed, 1)
		if seqSnap == "" {
			t.Fatal("empty telemetry snapshot")
		}
		if seqTrace == "" {
			t.Fatal("empty trace stream")
		}
		// The scenario must actually produce the event kinds the layer
		// instruments, or determinism is vacuous.
		for _, kind := range []string{
			"beacon_originated", "beacon_propagated", "beacon_filtered",
			"fault_applied", "fault_healed",
		} {
			if !strings.Contains(seqTrace, `"kind":"`+kind+`"`) {
				t.Errorf("seed %d: trace stream has no %s events", seed, kind)
			}
		}
		for _, metric := range []string{"beacon_originated_total", "beacon_received_total", "net_tx_bytes_total", "sim_events_executed"} {
			if !strings.Contains(seqSnap, metric) {
				t.Errorf("seed %d: snapshot missing %s:\n%s", seed, metric, seqSnap)
			}
		}
		// Volatile scheduler-shape metrics must never leak into the
		// deterministic snapshot.
		if strings.Contains(seqSnap, "sim_parallel") {
			t.Errorf("seed %d: volatile metric in deterministic snapshot", seed)
		}
		for _, w := range []int{2, 4, 8} {
			snap, trace, dropped := goldenRun(t, coreTopo, seed, w)
			if snap != seqSnap {
				t.Errorf("seed %d: snapshot with %d workers differs from sequential:\n%s", seed, w, diffFirst(snap, seqSnap))
			}
			if trace != seqTrace {
				t.Errorf("seed %d: trace stream with %d workers differs from sequential:\n%s", seed, w, diffFirst(trace, seqTrace))
			}
			if dropped != seqDropped {
				t.Errorf("seed %d: dropped count with %d workers = %d, sequential %d", seed, w, dropped, seqDropped)
			}
		}
	}
}

// diffFirst renders the first differing line of two line-oriented strings.
func diffFirst(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d: got %q, want %q", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(g), len(w))
}
