package beacon

import (
	"fmt"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/core"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// Mode selects which beaconing level a simulation runs.
type Mode int

const (
	// CoreMode: selective flooding among core ASes over core links.
	CoreMode Mode = iota
	// IntraMode: uni-directional dissemination from core ASes down
	// provider-customer links; non-core ASes attach peer entries.
	IntraMode
)

func (m Mode) String() string {
	if m == CoreMode {
		return "core"
	}
	return "intra-isd"
}

// PCBMsg transports a beacon between ASes.
type PCBMsg struct {
	PCB *seg.PCB
}

// WireLen implements sim.Message with the exact encoded beacon size.
func (m PCBMsg) WireLen() int { return m.PCB.WireLen() }

// ServerConfig configures one AS's beacon server.
type ServerConfig struct {
	Local       addr.IA
	Topo        *topology.Graph
	Net         *sim.Network
	Signer      trust.Signer
	Verifier    trust.Verifier // nil disables verification (large sims)
	Selector    core.Selector
	StoreLimit  int
	Mode        Mode
	PCBLifetime time.Duration
	MTU         uint16
	// Policy is the AS-local beaconing policy (nil allows everything).
	Policy *Policy
}

// Server is the beacon server of one AS: it receives and stores PCBs and,
// on every beaconing interval, originates (core ASes) and propagates
// beacons according to its selector.
type Server struct {
	cfg   ServerConfig
	store *Store
	segID uint16
	// down marks a crashed server: it neither handles incoming PCBs nor
	// originates/propagates until restarted (chaos crash/restart fault).
	down bool
	// Stats
	Originated, Propagated, Received, Rejected uint64
	// DroppedWhileDown counts PCBs that arrived while crashed.
	DroppedWhileDown uint64

	// egress caches the per-neighbor egress link sets. Topology and
	// policy never change during a run (link failures act at the network
	// layer, not on the graph), so this is computed once on first use.
	egress     []neighborLinks
	egressDone bool
	// peers caches the static peering advertisement of peerEntries.
	peers     []seg.PeerEntry
	peersDone bool
	// selCands/selIngress are propagate's per-(origin, neighbor)
	// candidate scratch, reused across ticks to keep the hot path off
	// the allocator. Safe because selectors copy what they keep.
	selCands   []*seg.PCB
	selIngress []addr.IfID
	// interner dedups the identity caches (hop key, link list) of
	// repeated extensions: steady-state beaconing re-extends the same
	// stored paths every interval. Per-server, so parallel shards never
	// share it.
	interner seg.Interner
	// base is the reusable zero-entry origination beacon (extensions copy
	// its Info by value, so re-initializing it in place is safe).
	base *seg.PCB

	// shard is the AS's simulator shard, cached for telemetry cells and
	// trace attribution.
	shard uint32
	// Telemetry cells (nil no-ops when telemetry is disabled). Each cell
	// belongs to this server's shard, so parallel handler execution never
	// shares a cell.
	cReceived, cOriginated, cPropagated, cDroppedDown *telemetry.Cell
	cRejVerify, cRejLoop, cRejPolicy, cRejStore       *telemetry.Cell
}

// NewServer creates a beacon server and registers it as the AS's message
// handler on the network.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Topo.AS(cfg.Local) == nil {
		return nil, fmt.Errorf("beacon: unknown AS %s", cfg.Local)
	}
	if cfg.MTU == 0 {
		cfg.MTU = 1472
	}
	s := &Server{cfg: cfg, store: NewStore(cfg.StoreLimit)}
	cfg.Net.Register(cfg.Local, s)
	s.shard = cfg.Net.Shard(cfg.Local)
	return s, nil
}

// SetTelemetry resolves the server's per-shard metric cells in reg.
// Call after NewServer, before the simulation runs. Metric names carry
// the beaconing mode so core and intra-ISD runs sharing one registry
// stay separable.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	mode := s.cfg.Mode.String()
	c := func(name string) *telemetry.Cell {
		return reg.Counter(fmt.Sprintf(`beacon_%s_total{mode=%q}`, name, mode)).Cell(s.shard)
	}
	rej := func(reason string) *telemetry.Cell {
		return reg.Counter(fmt.Sprintf(`beacon_rejected_total{mode=%q,reason=%q}`, mode, reason)).Cell(s.shard)
	}
	s.cReceived = c("received")
	s.cOriginated = c("originated")
	s.cPropagated = c("propagated")
	s.cDroppedDown = c("dropped_down")
	s.cRejVerify = rej("verify")
	s.cRejLoop = rej("loop")
	s.cRejPolicy = rej("policy")
	s.cRejStore = rej("store")
}

// Store exposes the beacon store (read-mostly; experiments extract
// disseminated path sets from it).
func (s *Server) Store() *Store { return s.store }

// IsCore reports whether the server's AS is a core AS.
func (s *Server) IsCore() bool { return s.cfg.Topo.AS(s.cfg.Local).Core }

// SetDown crashes (true) or restarts (false) the server. A crashed
// server is deaf and mute: arriving PCBs are dropped and ticks do
// nothing. Its store survives the crash (persistent state); entries
// simply age out and are repopulated by neighbors after restart.
func (s *Server) SetDown(down bool) { s.down = down }

// Down reports whether the server is crashed.
func (s *Server) Down() bool { return s.down }

// HandleMessage implements sim.Handler: verify (optionally) and store.
func (s *Server) HandleMessage(from addr.IA, link *topology.Link, msg sim.Message) {
	pm, ok := msg.(PCBMsg)
	if !ok {
		return
	}
	// Every reject path below recycles the beacon: this server is the
	// message's only receiver, and a PCB that was never stored left no
	// references behind (see seg.Recycle).
	if s.down {
		s.DroppedWhileDown++
		s.cDroppedDown.Inc()
		s.filtered(from, pm.PCB, "down")
		seg.Recycle(pm.PCB)
		return
	}
	s.Received++
	s.cReceived.Inc()
	now := s.cfg.Net.Sim.Now()
	if s.cfg.Verifier != nil {
		if err := pm.PCB.Verify(s.cfg.Verifier); err != nil {
			s.Rejected++
			s.cRejVerify.Inc()
			s.filtered(from, pm.PCB, "verify")
			seg.Recycle(pm.PCB)
			return
		}
	}
	if pm.PCB.ContainsAS(s.cfg.Local) {
		s.Rejected++ // loop
		s.cRejLoop.Inc()
		s.filtered(from, pm.PCB, "loop")
		seg.Recycle(pm.PCB)
		return
	}
	if !s.cfg.Policy.AcceptsReceive(pm.PCB) {
		s.Rejected++ // policy
		s.cRejPolicy.Inc()
		s.filtered(from, pm.PCB, "policy")
		seg.Recycle(pm.PCB)
		return
	}
	switch s.store.InsertPCB(now, pm.PCB, link.LocalIf(s.cfg.Local)) {
	case Stored, Refreshed:
		// The store took the reference.
	case DupStale:
		seg.Recycle(pm.PCB) // path already represented; not a rejection
	default: // DropExpired, DropWorse
		s.Rejected++
		s.cRejStore.Inc()
		s.filtered(from, pm.PCB, "store")
		seg.Recycle(pm.PCB)
	}
}

// filtered emits the BeaconFiltered trace event. Called from the
// server's own sharded handler, so parallel emissions stage on this
// shard's event frame (see sim.Trace).
func (s *Server) filtered(from addr.IA, p *seg.PCB, reason string) {
	s.cfg.Net.Sim.Trace(s.shard, telemetry.Event{
		Kind:    telemetry.BeaconFiltered,
		Actor:   s.cfg.Local.Uint64(),
		Subject: from.Uint64(),
		Aux:     uint64(p.NumHops()),
		Reason:  reason,
	})
}

// Tick runs one beaconing interval: origination (core ASes) followed by
// propagation of stored beacons.
func (s *Server) Tick(now sim.Time) {
	if s.down {
		return
	}
	if s.IsCore() {
		s.originate(now)
	}
	s.propagate(now)
}

// egressLinks returns, per downstream neighbor, the links beaconing may
// use in the configured mode, in deterministic neighbor order. The
// result is computed once and cached: it depends only on topology,
// mode, and policy, all fixed for the lifetime of a run.
func (s *Server) egressLinks() []neighborLinks {
	if s.egressDone {
		return s.egress
	}
	s.egressDone = true
	local := s.cfg.Local
	byNeighbor := map[addr.IA][]*topology.Link{}
	for _, l := range s.cfg.Topo.AS(local).Links {
		switch s.cfg.Mode {
		case CoreMode:
			if l.Rel != topology.Core {
				continue
			}
		case IntraMode:
			// Only provider-to-customer direction, local as provider.
			if l.Rel != topology.ProviderOf || l.A != local {
				continue
			}
		}
		if !s.cfg.Policy.AllowsEgress(l.LocalIf(local)) {
			continue
		}
		o := l.Other(local)
		byNeighbor[o] = append(byNeighbor[o], l)
	}
	for _, nb := range s.cfg.Topo.Neighbors(local) {
		links := byNeighbor[nb]
		if len(links) == 0 {
			continue
		}
		nl := neighborLinks{
			Neighbor: nb,
			Links:    links,
			IfIDs:    make([]addr.IfID, len(links)),
			ByIf:     make(map[addr.IfID]*topology.Link, len(links)),
		}
		for i, l := range links {
			nl.IfIDs[i] = l.LocalIf(local)
			nl.ByIf[nl.IfIDs[i]] = l
		}
		s.egress = append(s.egress, nl)
	}
	return s.egress
}

type neighborLinks struct {
	Neighbor addr.IA
	Links    []*topology.Link
	// IfIDs[i] is Links[i].LocalIf(local); ByIf resolves a selected
	// egress interface back to its link.
	IfIDs []addr.IfID
	ByIf  map[addr.IfID]*topology.Link
}

// originate creates a fresh beacon per egress link, as core ASes initiate
// PCBs every interval on every (core or customer, depending on mode)
// interface.
func (s *Server) originate(now sim.Time) {
	local := s.cfg.Local
	for _, nl := range s.egressLinks() {
		for _, l := range nl.Links {
			s.segID++
			if s.base == nil {
				s.base = seg.NewPCB(local, s.segID, now, sim.Time(s.cfg.PCBLifetime))
			} else {
				s.base.Reinit(s.segID, now, sim.Time(s.cfg.PCBLifetime))
			}
			ext, err := s.base.ExtendInterned(&s.interner, s.cfg.Signer, nl.Neighbor, 0, l.LocalIf(local), s.peerEntries(), s.cfg.MTU)
			if err != nil {
				continue
			}
			s.cfg.Net.Send(local, l, PCBMsg{PCB: ext})
			s.Originated++
			s.cOriginated.Inc()
			s.cfg.Net.Sim.Trace(s.shard, telemetry.Event{
				Kind:    telemetry.BeaconOriginated,
				Actor:   local.Uint64(),
				Subject: uint64(l.LocalIf(local)),
				Aux:     uint64(s.segID),
			})
		}
	}
}

// propagate runs the selector per (origin, neighbor) pair over the stored
// beacons and disseminates the chosen combinations.
func (s *Server) propagate(now sim.Time) {
	local := s.cfg.Local
	neighbors := s.egressLinks()
	if len(neighbors) == 0 {
		return
	}
	for _, origin := range s.store.Origins() {
		entries := s.store.Entries(now, origin)
		if len(entries) == 0 {
			continue
		}
		for _, nl := range neighbors {
			if origin == nl.Neighbor {
				continue // never send the origin its own beacons back
			}
			// Filter loops through this neighbor into the reused
			// candidate scratch, keeping the ingress association for
			// extension (selIngress[i] belongs to selCands[i]).
			cands := s.selCands[:0]
			ingress := s.selIngress[:0]
			for _, e := range entries {
				if e.PCB.ContainsAS(nl.Neighbor) {
					continue
				}
				cands = append(cands, e.PCB)
				ingress = append(ingress, e.Ingress)
			}
			s.selCands, s.selIngress = cands, ingress
			if len(cands) == 0 {
				continue
			}
			for _, sel := range s.cfg.Selector.Select(now, origin, nl.Neighbor, nl.IfIDs, cands) {
				link := nl.ByIf[sel.Egress]
				if link == nil {
					continue
				}
				var ingressIf addr.IfID
				for i := len(cands) - 1; i >= 0; i-- {
					if cands[i] == sel.PCB {
						ingressIf = ingress[i]
						break
					}
				}
				ext, err := sel.PCB.ExtendInterned(&s.interner, s.cfg.Signer, nl.Neighbor, ingressIf, sel.Egress, s.peerEntries(), s.cfg.MTU)
				if err != nil {
					continue
				}
				s.cfg.Net.Send(local, link, PCBMsg{PCB: ext})
				s.Propagated++
				s.cPropagated.Inc()
				s.cfg.Net.Sim.Trace(s.shard, telemetry.Event{
					Kind:    telemetry.BeaconPropagated,
					Actor:   local.Uint64(),
					Subject: uint64(sel.Egress),
					Aux:     uint64(ext.NumHops()),
				})
			}
		}
	}
}

// peerEntries advertises the AS's peering links inside its AS entries
// (only meaningful in intra-ISD beaconing; core beaconing carries none).
// The result is cached: peering links are static, and Extend shares the
// slice without mutating it (see the PCB immutability contract).
func (s *Server) peerEntries() []seg.PeerEntry {
	if s.cfg.Mode != IntraMode {
		return nil
	}
	if s.peersDone {
		return s.peers
	}
	s.peersDone = true
	local := s.cfg.Local
	for _, l := range s.cfg.Topo.AS(local).Links {
		if l.Rel != topology.PeerOf {
			continue
		}
		s.peers = append(s.peers, seg.PeerEntry{
			Peer:    l.Other(local),
			PeerIf:  l.RemoteIf(local),
			LocalIf: l.LocalIf(local),
		})
	}
	return s.peers
}

// HandleLinkFailure reacts to an inter-domain link failure: affected
// beacons are revoked from the store and the selector's per-link state is
// cleared so alternatives are re-disseminated (paper §4.1 path
// revocation, applied at the beacon server).
func (s *Server) HandleLinkFailure(l *topology.Link) int {
	keys := []seg.LinkKey{{IA: l.A, If: l.AIf}, {IA: l.B, If: l.BIf}}
	dropped := 0
	for _, key := range keys {
		dropped += s.store.RevokeLink(key)
		if r, ok := s.cfg.Selector.(core.Revoker); ok {
			r.Revoke(key)
		}
	}
	return dropped
}

// Segments returns the disseminated path segments currently available at
// this AS from the given origin, as link sequences resolvable against the
// topology — the observable the Figure 6/7/8 metrics consume. The final
// hop is the arrival link at this AS (already encoded in the sender's AS
// entry), so the stored links describe the complete origin-to-here path.
func (s *Server) Segments(now sim.Time, origin addr.IA) [][]seg.LinkKey {
	var out [][]seg.LinkKey
	for _, e := range s.store.Entries(now, origin) {
		out = append(out, e.PCB.Links())
	}
	return out
}
