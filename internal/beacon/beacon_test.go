package beacon

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/core"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

const hour = sim.Time(time.Hour)

type fakeSigner struct{ ia addr.IA }

func (f fakeSigner) IA() addr.IA                 { return f.ia }
func (f fakeSigner) Sign([]byte) ([]byte, error) { return make([]byte, trust.SignatureLen), nil }

func mkPCB(t *testing.T, origin addr.IA, ts sim.Time, life sim.Time, hops ...[3]uint64) *seg.PCB {
	t.Helper()
	p := seg.NewPCB(origin, 1, ts, life)
	for _, h := range hops {
		var err error
		local := addr.MustIA(1, addr.AS(h[0]))
		p, err = p.Extend(fakeSigner{ia: local}, addr.IA{}, addr.IfID(h[1]), addr.IfID(h[2]), nil, 1472)
		if err != nil {
			t.Fatal(err)
		}
	}
	return p
}

var org = addr.MustIA(1, 100)

func TestStoreInsertAndDedup(t *testing.T) {
	s := NewStore(5)
	p := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 1})
	if !s.Insert(0, p, 3) {
		t.Fatal("insert failed")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	// Same path, newer instance replaces (no growth).
	newer := mkPCB(t, org, hour, 6*hour, [3]uint64{100, 0, 1})
	if !s.Insert(hour, newer, 3) {
		t.Fatal("replacing insert failed")
	}
	if s.Len() != 1 {
		t.Fatalf("len after replace = %d", s.Len())
	}
	got := s.PCBs(hour, org)
	if len(got) != 1 || got[0].Info.Expiry != newer.Info.Expiry {
		t.Error("newer instance did not replace")
	}
	// Older instance of the same path does not regress.
	if !s.Insert(hour, p, 3) {
		t.Fatal("stale insert should still report stored (dedup)")
	}
	if s.PCBs(hour, org)[0].Info.Expiry != newer.Info.Expiry {
		t.Error("stale instance overwrote newer one")
	}
	// Same path on a different ingress is a distinct entry.
	if !s.Insert(hour, newer, 4) {
		t.Fatal("distinct-ingress insert failed")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
}

func TestStoreRejectsExpired(t *testing.T) {
	s := NewStore(5)
	p := mkPCB(t, org, 0, hour, [3]uint64{100, 0, 1})
	if s.Insert(2*hour, p, 1) {
		t.Error("expired beacon stored")
	}
}

func TestStoreLimitEviction(t *testing.T) {
	s := NewStore(2)
	long := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2}, [3]uint64{3, 1, 2})
	mid := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 2}, [3]uint64{4, 1, 2})
	short := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 3})
	if !s.Insert(0, long, 1) || !s.Insert(0, mid, 1) {
		t.Fatal("setup inserts failed")
	}
	// Store full; a shorter beacon evicts the longest.
	if !s.Insert(0, short, 1) {
		t.Fatal("better beacon rejected")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	for _, p := range s.PCBs(0, org) {
		if p.NumHops() == 3 {
			t.Error("longest beacon not evicted")
		}
	}
	// A worse (longer) beacon is rejected when full.
	longer := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 9}, [3]uint64{8, 1, 2}, [3]uint64{7, 1, 2}, [3]uint64{6, 1, 2})
	if s.Insert(0, longer, 1) {
		t.Error("worse beacon accepted into full store")
	}
}

func TestStoreUnlimited(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 50; i++ {
		p := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, uint64(i + 1)})
		if !s.Insert(0, p, 1) {
			t.Fatal("unlimited store rejected insert")
		}
	}
	if s.Len() != 50 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStorePrune(t *testing.T) {
	s := NewStore(0)
	s.Insert(0, mkPCB(t, org, 0, hour, [3]uint64{100, 0, 1}), 1)
	s.Insert(0, mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 2}), 1)
	s.Prune(2 * hour)
	if s.Len() != 1 {
		t.Fatalf("len after prune = %d", s.Len())
	}
	if got := s.PCBs(2*hour, org); len(got) != 1 {
		t.Fatalf("valid PCBs = %d", len(got))
	}
	// Entries filters expired even without Prune.
	s2 := NewStore(0)
	s2.Insert(0, mkPCB(t, org, 0, hour, [3]uint64{100, 0, 1}), 1)
	if got := s2.Entries(2*hour, org); len(got) != 0 {
		t.Error("expired entry returned")
	}
}

func TestStoreOrigins(t *testing.T) {
	s := NewStore(0)
	o2 := addr.MustIA(1, 200)
	s.Insert(0, mkPCB(t, o2, 0, hour, [3]uint64{200, 0, 1}), 1)
	s.Insert(0, mkPCB(t, org, 0, hour, [3]uint64{100, 0, 1}), 1)
	origins := s.Origins()
	if len(origins) != 2 || origins[0] != org || origins[1] != o2 {
		t.Errorf("origins = %v", origins)
	}
}

// runCore runs core beaconing on the demo topology's core graph.
func runCore(t *testing.T, factory core.Factory, storeLimit int, dur time.Duration) *RunResult {
	t.Helper()
	demo := topology.Demo()
	keep := map[addr.IA]bool{}
	for _, ia := range demo.CoreIAs() {
		keep[ia] = true
	}
	coreTopo := demo.Subgraph(keep)
	cfg := DefaultRunConfig(coreTopo, CoreMode, factory, storeLimit)
	cfg.Duration = dur
	cfg.Verify = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCoreBeaconingBaselineDisseminates(t *testing.T) {
	res := runCore(t, core.NewBaseline(5), 10, time.Hour)
	cores := res.Cfg.Topo.CoreIAs()
	// Every core AS must learn paths from every other core AS.
	for _, src := range cores {
		for _, dst := range cores {
			if src == dst {
				continue
			}
			if ps := res.PathSet(src, dst); len(ps) == 0 {
				t.Errorf("no paths from %s at %s", src, dst)
			}
		}
	}
	if res.TotalOverheadBytes() == 0 {
		t.Error("no overhead recorded")
	}
	// No dropped messages (all ASes have handlers) and no rejects from
	// verification.
	if res.Net.Dropped != 0 {
		t.Errorf("dropped = %d", res.Net.Dropped)
	}
	for ia, srv := range res.Servers {
		if srv.Rejected > srv.Received/2 {
			t.Errorf("%s rejected %d of %d", ia, srv.Rejected, srv.Received)
		}
	}
}

func TestCoreBeaconingDiversityCheaperThanBaseline(t *testing.T) {
	base := runCore(t, core.NewBaseline(5), 10, 3*time.Hour)
	div := runCore(t, core.NewDiversity(core.DefaultParams(5)), 10, 3*time.Hour)
	bo, do := base.TotalOverheadBytes(), div.TotalOverheadBytes()
	if do >= bo {
		t.Errorf("diversity overhead %d not below baseline %d", do, bo)
	}
	// And it must still deliver full connectivity.
	cores := div.Cfg.Topo.CoreIAs()
	for _, src := range cores {
		for _, dst := range cores {
			if src != dst && len(div.PathSet(src, dst)) == 0 {
				t.Errorf("diversity lost connectivity %s -> %s", src, dst)
			}
		}
	}
}

func TestCoreBeaconingQualityBounds(t *testing.T) {
	res := runCore(t, core.NewDiversity(core.DefaultParams(5)), 20, 2*time.Hour)
	cores := res.Cfg.Topo.CoreIAs()
	for _, src := range cores {
		for _, dst := range cores {
			if src == dst {
				continue
			}
			q := res.Quality(src, dst)
			if q < 1 {
				t.Errorf("quality(%s,%s) = %d, want >= 1", src, dst, q)
			}
		}
	}
}

func TestIntraISDBeaconing(t *testing.T) {
	// Intra-ISD beaconing on the full demo graph: PCBs only flow down
	// provider-customer links, so the three ISDs stay isolated without
	// any explicit partitioning (paper Mechanism 5).
	demo := topology.Demo()
	cfg := DefaultRunConfig(demo, IntraMode, core.NewBaseline(5), 10)
	cfg.Duration = time.Hour
	cfg.Verify = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-core AS must have up-segments from at least one core AS
	// of its own ISD (the hierarchy above it), and none from foreign ISDs.
	for _, ia := range demo.IAs() {
		if demo.AS(ia).Core {
			continue
		}
		found := 0
		for _, c := range demo.CoreIAs() {
			n := len(res.PathSet(c, ia))
			if c.ISD != ia.ISD && n > 0 {
				t.Errorf("%s received beacons from foreign core %s", ia, c)
			}
			if c.ISD == ia.ISD && n > 0 {
				found++
			}
		}
		if found == 0 {
			t.Errorf("no intra-ISD paths at %s", ia)
		}
	}
	// A-5 and A-6 sit below both cores of ISD 1 and must see both.
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	a2 := addr.MustIA(1, 0xff00_0000_0102)
	a6 := addr.MustIA(1, 0xff00_0000_0106)
	if len(res.PathSet(a1, a6)) == 0 || len(res.PathSet(a2, a6)) == 0 {
		t.Error("A-6 must have up-segments to both core ASes")
	}
	// Core ASes must NOT receive beacons (uni-directional dissemination).
	for _, c := range demo.CoreIAs() {
		srv := res.Servers[c]
		if srv.Store().Len() != 0 {
			t.Errorf("core AS %s stored %d intra-ISD beacons, want 0", c, srv.Store().Len())
		}
	}
	// Non-core AS entries include peer entries where peering exists: A-5
	// peers with B-4.
	a5 := addr.MustIA(1, 0xff00_0000_0105)
	found := false
	for _, e := range res.Servers[a6].Store().Entries(res.End, a1) {
		for _, entry := range e.PCB.ASEntries {
			if entry.Local == a5 && len(entry.Peers) > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("peer entries of A-5 missing from intra-ISD beacons at A-6")
	}
}

func TestIntraISDOverheadBelowCore(t *testing.T) {
	// Sanity for the paper's claim that intra-ISD beaconing is far
	// cheaper: on the same AS count, intra-ISD (tree-down) sends less
	// than core (flooding).
	demo := topology.Demo()
	keepISD := map[addr.IA]bool{}
	for _, ia := range demo.IAs() {
		if ia.ISD == 1 {
			keepISD[ia] = true
		}
	}
	isd := demo.Subgraph(keepISD)
	cfgI := DefaultRunConfig(isd, IntraMode, core.NewBaseline(5), 10)
	cfgI.Duration = 2 * time.Hour
	resI, err := Run(cfgI)
	if err != nil {
		t.Fatal(err)
	}
	keepCore := map[addr.IA]bool{}
	for _, ia := range demo.CoreIAs() {
		keepCore[ia] = true
	}
	coreT := demo.Subgraph(keepCore)
	cfgC := DefaultRunConfig(coreT, CoreMode, core.NewBaseline(5), 10)
	cfgC.Duration = 2 * time.Hour
	resC, err := Run(cfgC)
	if err != nil {
		t.Fatal(err)
	}
	if resI.TotalOverheadBytes() >= resC.TotalOverheadBytes() {
		t.Errorf("intra-ISD %d >= core %d bytes", resI.TotalOverheadBytes(), resC.TotalOverheadBytes())
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty config must fail")
	}
	cfg := DefaultRunConfig(topology.Demo(), CoreMode, core.NewBaseline(5), 10)
	cfg.Interval = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero interval must fail")
	}
}

func TestModeString(t *testing.T) {
	if CoreMode.String() != "core" || IntraMode.String() != "intra-isd" {
		t.Error("mode strings wrong")
	}
}

func TestPerInterfaceBandwidth(t *testing.T) {
	res := runCore(t, core.NewBaseline(5), 10, time.Hour)
	bw := res.PerInterfaceBandwidth()
	if len(bw) == 0 {
		t.Fatal("no per-interface bandwidth")
	}
	for _, v := range bw {
		if v < 0 {
			t.Error("negative bandwidth")
		}
	}
	mon := res.MonitorRxBytes(res.Cfg.Topo.CoreIAs()[:2])
	if len(mon) != 2 || mon[0] == 0 {
		t.Errorf("monitor bytes = %v", mon)
	}
}

func TestStoreRevokeLink(t *testing.T) {
	s := NewStore(0)
	onLink := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2})
	offLink := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 3}, [3]uint64{4, 1, 2})
	s.Insert(0, onLink, 1)
	s.Insert(0, offLink, 1)
	dropped := s.RevokeLink(seg.LinkKey{IA: addr.MustIA(1, 100), If: 1})
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	left := s.PCBs(0, org)
	if len(left) != 1 || left[0].HopsKey() != offLink.HopsKey() {
		t.Errorf("wrong beacon survived: %v", left)
	}
	if s.RevokeLink(seg.LinkKey{IA: addr.MustIA(9, 9), If: 1}) != 0 {
		t.Error("bogus link dropped beacons")
	}
}

func TestRunResultRevokeLink(t *testing.T) {
	res := runCore(t, core.NewBaseline(5), 20, time.Hour)
	topo := res.Cfg.Topo
	link := topo.Links[0]
	// Some server must hold a beacon over the first core link.
	if dropped := res.RevokeLink(link); dropped == 0 {
		t.Error("revocation dropped nothing on a live core link")
	}
	// Path sets no longer contain the failed link.
	for _, src := range topo.CoreIAs() {
		for _, dst := range topo.CoreIAs() {
			if src == dst {
				continue
			}
			for _, path := range res.PathSet(src, dst) {
				for _, pl := range path {
					if pl.ID == link.ID {
						t.Fatalf("revoked link still on a path %s->%s", src, dst)
					}
				}
			}
		}
	}
}
