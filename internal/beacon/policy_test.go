package beacon

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/core"
	"scionmpr/internal/seg"
	"scionmpr/internal/topology"
)

func TestPolicyAcceptsReceive(t *testing.T) {
	long := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2}, [3]uint64{3, 1, 2})
	short := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 1})

	var nilPolicy *Policy
	if !nilPolicy.AcceptsReceive(long) || !nilPolicy.AllowsEgress(1) {
		t.Error("nil policy must allow everything")
	}

	p := &Policy{MaxHops: 2}
	if p.AcceptsReceive(long) {
		t.Error("MaxHops not enforced")
	}
	if !p.AcceptsReceive(short) {
		t.Error("short beacon rejected")
	}

	geo := &Policy{DenyOriginISDs: []addr.ISD{1}}
	if geo.AcceptsReceive(short) {
		t.Error("geofenced ISD accepted")
	}
	asDeny := &Policy{DenyOriginASes: []addr.IA{org}}
	if asDeny.AcceptsReceive(short) {
		t.Error("denied origin AS accepted")
	}
	custom := &Policy{AcceptFilter: func(pcb *seg.PCB) bool { return pcb.NumHops() > 5 }}
	if custom.AcceptsReceive(short) {
		t.Error("custom filter ignored")
	}
}

func TestPolicyAllowsEgress(t *testing.T) {
	p := &Policy{DenyEgress: []addr.IfID{3, 7}}
	if p.AllowsEgress(3) || p.AllowsEgress(7) {
		t.Error("denied interface allowed")
	}
	if !p.AllowsEgress(1) {
		t.Error("open interface denied")
	}
}

func TestGeofencingPolicyInSimulation(t *testing.T) {
	// ISD-3 beacons must never be stored at B-3 when its policy denies
	// ISD 3 origins — the geofencing use case of §3.1.
	demo := topology.Demo()
	b3 := addr.MustIA(2, 0xff00_0000_0203)
	keep := map[addr.IA]bool{}
	for _, ia := range demo.CoreIAs() {
		keep[ia] = true
	}
	coreTopo := demo.Subgraph(keep)
	b2 := addr.MustIA(2, 0xff00_0000_0202)
	_ = b3

	cfg := DefaultRunConfig(coreTopo, CoreMode, core.NewBaseline(5), 20)
	cfg.Duration = 2 * time.Hour
	cfg.Policies = map[addr.IA]*Policy{
		b2: {DenyOriginISDs: []addr.ISD{3}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range coreTopo.CoreIAs() {
		ps := res.PathSet(c, b2)
		if c.ISD == 3 && len(ps) != 0 {
			t.Errorf("geofenced origin %s stored at B-2", c)
		}
		if c.ISD == 1 && len(ps) == 0 {
			t.Errorf("allowed origin %s missing at B-2", c)
		}
	}
	// Unrestricted ASes still receive ISD-3 beacons.
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	c1 := addr.MustIA(3, 0xff00_0000_0301)
	if len(res.PathSet(c1, a1)) == 0 {
		t.Error("unrestricted AS lost ISD-3 beacons")
	}
}

func TestDenyEgressPolicyInSimulation(t *testing.T) {
	// Denying all of an AS's egress interfaces silences its beaconing.
	demo := topology.Demo()
	keep := map[addr.IA]bool{}
	for _, ia := range demo.CoreIAs() {
		keep[ia] = true
	}
	coreTopo := demo.Subgraph(keep)
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	var deny []addr.IfID
	for _, l := range coreTopo.AS(a1).Links {
		deny = append(deny, l.LocalIf(a1))
	}
	cfg := DefaultRunConfig(coreTopo, CoreMode, core.NewBaseline(5), 20)
	cfg.Duration = time.Hour
	cfg.Policies = map[addr.IA]*Policy{a1: {DenyEgress: deny}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers[a1].Originated != 0 || res.Servers[a1].Propagated != 0 {
		t.Errorf("silenced AS still sent beacons: orig=%d prop=%d",
			res.Servers[a1].Originated, res.Servers[a1].Propagated)
	}
	// Its neighbors can still reach each other around it.
	a2 := addr.MustIA(1, 0xff00_0000_0102)
	b2 := addr.MustIA(2, 0xff00_0000_0202)
	if len(res.PathSet(b2, a2)) == 0 {
		t.Error("network did not route around the silenced AS")
	}
}
