// Checkpoint/restore for beaconing runs. A snapshot captures everything a
// resumed run needs to finish with a RunResult fingerprint byte-identical
// to the uninterrupted run: the simulator clock and executed count, the
// network's counters and fault state, every server's stats and beacon
// store, the selector state of stateful selectors, and the chaos engine's
// overlap bookkeeping. Pending events are deliberately NOT serialized —
// they are closures, and Resume re-creates the exact pending population
// from the RunConfig (see the registration-order comment on runActors).
//
// Snapshots are only taken at beaconing-interval boundaries, where no
// deliveries are in flight (link delays are far below the interval), so
// the event queue at capture time consists purely of reconstructible
// schedule entries: interval ticks, configured failures, and the chaos
// plan (a pure function of its seed).
//
// The wire format reuses the path-server WAL's framing discipline: each
// section is a frame of u32 payload length, u32 CRC-32 (IEEE) of the
// payload, then the payload, all big-endian, in fixed section order
// (header, network, one section per server in Topo.IAs() order, then the
// chaos section iff the run has a chaos schedule).
package beacon

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/chaos"
	"scionmpr/internal/core"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

const (
	snapMagic   = 0x4D505243 // "MPRC"
	snapVersion = 1
)

// appendFrame wraps payload in the WAL framing (length, CRC, payload).
func appendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// snapReader walks a snapshot's frames and payload fields with sticky
// errors.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("beacon: snapshot "+format, args...)
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("truncated at offset %d (need %d of %d)", r.off, n, len(r.b))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *snapReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *snapReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *snapReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("beacon: snapshot section has %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// frames splits a snapshot into its CRC-verified section payloads.
func frames(b []byte) ([][]byte, error) {
	var out [][]byte
	off := 0
	for off < len(b) {
		if off+8 > len(b) {
			return nil, fmt.Errorf("beacon: snapshot frame header truncated at offset %d", off)
		}
		n := int(binary.BigEndian.Uint32(b[off:]))
		sum := binary.BigEndian.Uint32(b[off+4:])
		off += 8
		if off+n > len(b) {
			return nil, fmt.Errorf("beacon: snapshot frame payload truncated at offset %d (need %d)", off, n)
		}
		payload := b[off : off+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("beacon: snapshot frame at offset %d fails CRC", off-8)
		}
		out = append(out, payload)
		off += n
	}
	return out, nil
}

// checkpointSupported rejects configurations whose fingerprint folds in
// cumulative observer state a resumed run cannot reproduce.
func checkpointSupported(cfg RunConfig) error {
	if cfg.Telemetry != nil || cfg.Tracer != nil {
		return fmt.Errorf("beacon: checkpoint/resume with telemetry or tracing attached is unsupported (their cumulative state is part of the fingerprint)")
	}
	// Note on keys: with cfg.Infra nil, both runs call NewInfra(Sized),
	// which derives keys deterministically, so the resumed run rebuilds
	// identical signers. A caller passing its own Infra must pass the
	// same one (or an identically constructed one) to Resume.
	return nil
}

// appendNetworkState serializes a NetworkState canonically (maps in
// sorted key order).
func appendNetworkState(dst []byte, st sim.NetworkState) []byte {
	keys := make([]sim.IfKey, 0, len(st.Counters))
	for k := range st.Counters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].IA != keys[j].IA {
			return keys[i].IA.Less(keys[j].IA)
		}
		return keys[i].If < keys[j].If
	})
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		c := st.Counters[k]
		dst = binary.BigEndian.AppendUint64(dst, k.IA.Uint64())
		dst = binary.BigEndian.AppendUint16(dst, uint16(k.If))
		dst = binary.BigEndian.AppendUint64(dst, c.TxBytes)
		dst = binary.BigEndian.AppendUint64(dst, c.TxMsgs)
		dst = binary.BigEndian.AppendUint64(dst, c.RxBytes)
		dst = binary.BigEndian.AppendUint64(dst, c.RxMsgs)
	}

	failed := append([]topology.LinkID(nil), st.Failed...)
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(failed)))
	for _, id := range failed {
		dst = binary.BigEndian.AppendUint32(dst, uint32(id))
	}

	ids := make([]topology.LinkID, 0, len(st.Delays))
	for id := range st.Delays {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint32(dst, uint32(id))
		dst = binary.BigEndian.AppendUint64(dst, uint64(st.Delays[id]))
	}

	ids = ids[:0]
	for id := range st.Loss {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint32(dst, uint32(id))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(st.Loss[id]))
	}

	if st.LossSeeded {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.LossSeed))
	dst = binary.BigEndian.AppendUint64(dst, st.LossDraws)
	dst = binary.BigEndian.AppendUint64(dst, st.Dropped)
	dst = binary.BigEndian.AppendUint64(dst, st.DroppedOnFailedLinks)
	dst = binary.BigEndian.AppendUint64(dst, st.DroppedByLoss)
	return dst
}

func readNetworkState(r *snapReader) sim.NetworkState {
	var st sim.NetworkState
	n := int(r.u32())
	st.Counters = make(map[sim.IfKey]sim.Counter, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := sim.IfKey{IA: addr.IAFromUint64(r.u64()), If: addr.IfID(r.u16())}
		st.Counters[k] = sim.Counter{
			TxBytes: r.u64(), TxMsgs: r.u64(),
			RxBytes: r.u64(), RxMsgs: r.u64(),
		}
	}
	n = int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		st.Failed = append(st.Failed, topology.LinkID(r.u32()))
	}
	n = int(r.u32())
	st.Delays = make(map[topology.LinkID]time.Duration, n)
	for i := 0; i < n && r.err == nil; i++ {
		id := topology.LinkID(r.u32())
		st.Delays[id] = time.Duration(r.u64())
	}
	n = int(r.u32())
	st.Loss = make(map[topology.LinkID]float64, n)
	for i := 0; i < n && r.err == nil; i++ {
		id := topology.LinkID(r.u32())
		st.Loss[id] = math.Float64frombits(r.u64())
	}
	st.LossSeeded = r.u8() != 0
	st.LossSeed = int64(r.u64())
	st.LossDraws = r.u64()
	st.Dropped = r.u64()
	st.DroppedOnFailedLinks = r.u64()
	st.DroppedByLoss = r.u64()
	return st
}

// appendServerState serializes one server: identity, stats, the beacon
// store (origins in sorted order, entries in the store's canonical
// order — the same traversal the fingerprint uses), and the selector
// state blob for stateful selectors.
func appendServerState(dst []byte, srv *Server, now sim.Time) []byte {
	dst = binary.BigEndian.AppendUint64(dst, srv.cfg.Local.Uint64())
	dst = binary.BigEndian.AppendUint16(dst, srv.segID)
	if srv.down {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint64(dst, srv.Originated)
	dst = binary.BigEndian.AppendUint64(dst, srv.Propagated)
	dst = binary.BigEndian.AppendUint64(dst, srv.Received)
	dst = binary.BigEndian.AppendUint64(dst, srv.Rejected)
	dst = binary.BigEndian.AppendUint64(dst, srv.DroppedWhileDown)

	origins := srv.store.Origins()
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(origins)))
	for _, origin := range origins {
		entries := srv.store.Entries(now, origin)
		dst = binary.BigEndian.AppendUint64(dst, origin.Uint64())
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)))
		for _, e := range entries {
			enc := e.PCB.Encode()
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(enc)))
			dst = append(dst, enc...)
			dst = binary.BigEndian.AppendUint16(dst, uint16(e.Ingress))
			dst = binary.BigEndian.AppendUint64(dst, uint64(e.ReceivedAt))
		}
	}

	if cp, ok := srv.cfg.Selector.(core.Checkpointer); ok {
		blob := cp.AppendState(nil)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(blob)))
		dst = append(dst, blob...)
	} else {
		dst = binary.BigEndian.AppendUint32(dst, 0)
	}
	return dst
}

// restoreServerState applies one server section. The section's IA must
// match the server's (both follow Topo.IAs() order).
func restoreServerState(r *snapReader, srv *Server) error {
	ia := addr.IAFromUint64(r.u64())
	if r.err == nil && ia != srv.cfg.Local {
		return fmt.Errorf("beacon: snapshot server section for %v, want %v (topology mismatch?)", ia, srv.cfg.Local)
	}
	srv.segID = r.u16()
	srv.down = r.u8() != 0
	srv.Originated = r.u64()
	srv.Propagated = r.u64()
	srv.Received = r.u64()
	srv.Rejected = r.u64()
	srv.DroppedWhileDown = r.u64()

	nOrigins := int(r.u32())
	for i := 0; i < nOrigins && r.err == nil; i++ {
		r.u64() // origin — implied by the entries themselves
		nEntries := int(r.u32())
		for j := 0; j < nEntries && r.err == nil; j++ {
			enc := r.take(int(r.u32()))
			ingress := addr.IfID(r.u16())
			receivedAt := sim.Time(r.u64())
			if r.err != nil {
				break
			}
			pcb, err := seg.Decode(enc)
			if err != nil {
				return fmt.Errorf("beacon: snapshot PCB for %v: %w", srv.cfg.Local, err)
			}
			if res := srv.store.InsertPCB(receivedAt, pcb, ingress); res != Stored {
				return fmt.Errorf("beacon: snapshot entry for %v re-inserted as %v, want Stored", srv.cfg.Local, res)
			}
		}
	}

	blob := r.take(int(r.u32()))
	if r.err == nil && len(blob) > 0 {
		cp, ok := srv.cfg.Selector.(core.Checkpointer)
		if !ok {
			return fmt.Errorf("beacon: snapshot has selector state for %v but selector %q cannot restore it", srv.cfg.Local, srv.cfg.Selector.Name())
		}
		if err := cp.RestoreState(blob); err != nil {
			return err
		}
	}
	return r.done()
}

// capture builds the full snapshot at simulated time now. Must run in
// serial context (a BeforeStep hook) with no deliveries in flight.
func (a *runActors) capture(cfg RunConfig, eng *chaos.Engine, now sim.Time) ([]byte, error) {
	if n := a.s.PendingDeliveries(); n != 0 {
		return nil, fmt.Errorf("beacon: checkpoint at %v with %d deliveries in flight", now, n)
	}
	var header []byte
	header = binary.BigEndian.AppendUint32(header, snapMagic)
	header = binary.BigEndian.AppendUint16(header, snapVersion)
	header = binary.BigEndian.AppendUint64(header, uint64(now))
	header = binary.BigEndian.AppendUint64(header, a.s.Executed)
	ias := cfg.Topo.IAs()
	header = binary.BigEndian.AppendUint32(header, uint32(len(ias)))
	if eng != nil {
		header = append(header, 1)
	} else {
		header = append(header, 0)
	}
	snap := appendFrame(nil, header)
	snap = appendFrame(snap, appendNetworkState(nil, a.net.CheckpointState()))
	for _, ia := range ias {
		snap = appendFrame(snap, appendServerState(nil, a.servers[ia], now))
	}
	if eng != nil {
		snap = appendFrame(snap, eng.AppendState(nil))
	}
	return snap, nil
}

// RunWithCheckpoint executes cfg exactly like Run while also capturing a
// resumable snapshot at the first beaconing-interval boundary at or after
// `at`. It returns the completed run and the snapshot; feeding the
// snapshot to Resume with the same cfg reproduces the remainder of the
// run, fingerprint-identical.
func RunWithCheckpoint(cfg RunConfig, at time.Duration) (*RunResult, []byte, error) {
	if err := checkpointSupported(cfg); err != nil {
		return nil, nil, err
	}
	if at <= 0 || at > cfg.Duration {
		return nil, nil, fmt.Errorf("beacon: checkpoint time %v outside run duration %v", at, cfg.Duration)
	}
	a, err := buildActors(cfg)
	if err != nil {
		return nil, nil, err
	}
	// Align up to the next interval boundary: there, every pending event
	// is a schedule entry Resume can re-derive, and no deliveries are in
	// flight (link delays are orders of magnitude below the interval).
	iv := cfg.Interval
	aligned := sim.Time((at + iv - 1) / iv * iv)

	var (
		snap    []byte
		snapErr error
		eng     *chaos.Engine
	)
	a.s.BeforeStep(func(t sim.Time) {
		if snap != nil || snapErr != nil || t < aligned || time.Duration(t)%iv != 0 {
			return
		}
		snap, snapErr = a.capture(cfg, eng, t)
	})
	a.scheduleTicks(cfg)
	revokeAll := a.revokeAllFunc(cfg)
	a.scheduleFailures(cfg, 0, revokeAll)
	eng, err = a.applyChaos(cfg, revokeAll, nil)
	if err != nil {
		return nil, nil, err
	}
	res := a.finish(cfg, eng)
	if snapErr != nil {
		return nil, nil, snapErr
	}
	if snap == nil {
		return nil, nil, fmt.Errorf("beacon: no interval boundary at or after %v was reached", at)
	}
	return res, snap, nil
}

// Resume rebuilds a run from a snapshot taken by RunWithCheckpoint under
// the same RunConfig and executes it to completion. The returned
// RunResult's Fingerprint is byte-identical to the uninterrupted run's,
// for any worker count.
func Resume(cfg RunConfig, snapshot []byte) (*RunResult, error) {
	if err := checkpointSupported(cfg); err != nil {
		return nil, err
	}
	secs, err := frames(snapshot)
	if err != nil {
		return nil, err
	}
	if len(secs) < 2 {
		return nil, fmt.Errorf("beacon: snapshot has %d sections, want at least header and network", len(secs))
	}
	h := &snapReader{b: secs[0]}
	if magic := h.u32(); h.err == nil && magic != snapMagic {
		return nil, fmt.Errorf("beacon: snapshot magic %#x, want %#x", magic, snapMagic)
	}
	if v := h.u16(); h.err == nil && v != snapVersion {
		return nil, fmt.Errorf("beacon: snapshot version %d, want %d", v, snapVersion)
	}
	now := sim.Time(h.u64())
	executed := h.u64()
	numServers := int(h.u32())
	hasChaos := h.u8() != 0
	if err := h.done(); err != nil {
		return nil, err
	}
	if hasChaos != (cfg.Chaos != nil) {
		return nil, fmt.Errorf("beacon: snapshot chaos presence (%v) disagrees with config (%v)", hasChaos, cfg.Chaos != nil)
	}
	want := 2 + numServers
	if hasChaos {
		want++
	}
	if len(secs) != want {
		return nil, fmt.Errorf("beacon: snapshot has %d sections, want %d", len(secs), want)
	}

	a, err := buildActors(cfg)
	if err != nil {
		return nil, err
	}
	ias := cfg.Topo.IAs()
	if len(ias) != numServers {
		return nil, fmt.Errorf("beacon: snapshot has %d servers, topology has %d", numServers, len(ias))
	}
	if now > a.end {
		return nil, fmt.Errorf("beacon: snapshot time %v beyond run duration %v", time.Duration(now), cfg.Duration)
	}
	a.s.Restore(now, executed)
	a.net.RestoreState(readNetworkState(&snapReader{b: secs[1]}))
	for i, ia := range ias {
		if err := restoreServerState(&snapReader{b: secs[2+i]}, a.servers[ia]); err != nil {
			return nil, err
		}
	}
	// Registration order (failures, chaos plan, ticks) reproduces the
	// original run's relative sequence numbers among same-timestamp
	// events: setup-registered fault actions held smaller sequence
	// numbers than the self-rescheduled interval ticks in flight at the
	// checkpoint. See runActors.
	revokeAll := a.revokeAllFunc(cfg)
	a.scheduleFailures(cfg, now, revokeAll)
	var chaosState []byte
	if hasChaos {
		chaosState = secs[len(secs)-1]
	}
	eng, err := a.applyChaos(cfg, revokeAll, chaosState)
	if err != nil {
		return nil, err
	}
	a.scheduleTicks(cfg)
	return a.finish(cfg, eng), nil
}
