package beacon

import (
	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
)

// Policy captures an AS's local beaconing policy (paper §2.2: "the beacon
// server decides which PCBs to propagate on which interfaces based on
// AS-local policies"). The zero value allows everything.
type Policy struct {
	// MaxHops drops received beacons longer than this many AS entries
	// (0 = unlimited). Long paths are rarely useful and bloat stores.
	MaxHops int
	// DenyOriginISDs rejects beacons originated in the listed ISDs —
	// the geofencing building block that made SCION attractive as a
	// leased-line replacement (§3.1).
	DenyOriginISDs []addr.ISD
	// DenyOriginASes rejects beacons originated by specific ASes.
	DenyOriginASes []addr.IA
	// DenyEgress excludes local interfaces from propagation (e.g. a
	// paid transit link reserved for data traffic).
	DenyEgress []addr.IfID
	// AcceptFilter, if set, is a custom receive-side predicate applied
	// after the built-in checks.
	AcceptFilter func(*seg.PCB) bool
}

// AcceptsReceive reports whether a received beacon passes the policy.
func (p *Policy) AcceptsReceive(pcb *seg.PCB) bool {
	if p == nil {
		return true
	}
	if p.MaxHops > 0 && pcb.NumHops() > p.MaxHops {
		return false
	}
	origin := pcb.Origin()
	for _, isd := range p.DenyOriginISDs {
		if origin.ISD == isd {
			return false
		}
	}
	for _, ia := range p.DenyOriginASes {
		if origin == ia {
			return false
		}
	}
	if p.AcceptFilter != nil && !p.AcceptFilter(pcb) {
		return false
	}
	return true
}

// AllowsEgress reports whether propagation may use the interface.
func (p *Policy) AllowsEgress(ifID addr.IfID) bool {
	if p == nil {
		return true
	}
	for _, deny := range p.DenyEgress {
		if deny == ifID {
			return false
		}
	}
	return true
}
