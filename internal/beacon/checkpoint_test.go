package beacon

import (
	"strings"
	"testing"
	"time"

	"scionmpr/internal/chaos"
	"scionmpr/internal/core"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// chaosCfg builds the determinism scenario of detRun as a config: core
// beaconing with the diversity selector under a chaos schedule covering
// all four fault kinds, several of which straddle the checkpoint time
// used by the tests (gray failure active 22.5–42.5 min, flap churn
// throughout, crash at 45 min).
func chaosCfg(t *testing.T, topo *topology.Graph, seed int64, workers int) RunConfig {
	t.Helper()
	cfg := DefaultRunConfig(topo, CoreMode, core.NewDiversity(core.DefaultParams(5)), 15)
	cfg.Duration = 90 * time.Minute
	cfg.Workers = workers
	end := sim.Time(cfg.Duration)
	links := make([]topology.LinkID, 0, len(topo.Links))
	for _, l := range topo.Links {
		links = append(links, l.ID)
	}
	ias := topo.IAs()
	sched := chaos.FlapChurn(seed, links, 4, end/6, end-end/6, 30*time.Second, 10*time.Minute)
	sched.Events = append(sched.Events,
		chaos.Event{Kind: chaos.Gray, Link: links[int(seed)%len(links)],
			At: end / 4, Down: 20 * time.Minute, Rate: 0.3},
		chaos.Event{Kind: chaos.Spike, Link: links[(int(seed)+1)%len(links)],
			At: end / 3, Down: 10 * time.Minute, Delay: 200 * time.Millisecond},
		chaos.Event{Kind: chaos.CrashAS, IA: ias[int(seed)%len(ias)],
			At: end / 2, Down: 15 * time.Minute},
	)
	cfg.Chaos = sched
	return cfg
}

func checkpointTopo(t *testing.T) *topology.Graph {
	t.Helper()
	p := topology.DefaultGenParams()
	p.NumASes = 100
	p.Tier1 = 5
	full := topology.MustGenerate(p)
	coreTopo, err := topology.ExtractCore(full, 14)
	if err != nil {
		t.Fatal(err)
	}
	return coreTopo
}

// TestCheckpointResumeDeterminism is the checkpoint/restore contract: a
// run interrupted mid-way and resumed from its snapshot must finish with
// a fingerprint byte-identical to the uninterrupted run, for every worker
// count, under active chaos faults whose effects and pending recoveries
// straddle the checkpoint. Run with -race to also check the worker pool.
func TestCheckpointResumeDeterminism(t *testing.T) {
	topo := checkpointTopo(t)
	seed := int64(1)

	ref, err := Run(chaosCfg(t, topo, seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()

	// The checkpoint time is deliberately unaligned; capture happens at
	// the next interval boundary (40 min), with the gray failure and
	// several flaps active and their recoveries still pending.
	observed, snap, err := RunWithCheckpoint(chaosCfg(t, topo, seed, 1), 37*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Fingerprint() != want {
		t.Fatal("taking a checkpoint changed the run's fingerprint")
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}

	for _, w := range []int{1, 2, 4, 8} {
		res, err := Resume(chaosCfg(t, topo, seed, w), snap)
		if err != nil {
			t.Fatalf("resume with %d workers: %v", w, err)
		}
		if res.Fingerprint() != want {
			t.Errorf("resumed fingerprint with %d workers differs from uninterrupted run", w)
		}
		if res.Sim.Executed != ref.Sim.Executed {
			t.Errorf("resumed run executed %d events, uninterrupted %d", res.Sim.Executed, ref.Sim.Executed)
		}
	}
}

// TestCheckpointResumeFailuresAndBaseline covers the stateless-selector
// path (no selector blob) and configured link failures whose recovery is
// scheduled after the checkpoint.
func TestCheckpointResumeFailuresAndBaseline(t *testing.T) {
	topo := checkpointTopo(t)
	mk := func(workers int) RunConfig {
		cfg := DefaultRunConfig(topo, CoreMode, core.NewBaseline(5), 15)
		cfg.Duration = 80 * time.Minute
		cfg.Workers = workers
		cfg.Failures = []LinkFailure{
			{Link: topo.Links[0], After: 25 * time.Minute, Recover: 30 * time.Minute},
			{Link: topo.Links[1], After: 40 * time.Minute},
		}
		return cfg
	}
	ref, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	// Checkpoint lands exactly at 40 min, where the second failure is
	// pending but unexecuted; it must fire on the resumed run.
	_, snap, err := RunWithCheckpoint(mk(1), 40*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		res, err := Resume(mk(w), snap)
		if err != nil {
			t.Fatalf("resume with %d workers: %v", w, err)
		}
		if res.Fingerprint() != want {
			t.Errorf("resumed fingerprint with %d workers differs from uninterrupted run", w)
		}
	}
}

// TestCheckpointResumeIntraISD covers the hierarchical beaconing mode
// (peer entries, provider links) without faults.
func TestCheckpointResumeIntraISD(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 80
	p.Tier1 = 4
	full := topology.MustGenerate(p)
	isd, err := topology.BuildISD(full, 3)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) RunConfig {
		cfg := DefaultRunConfig(isd, IntraMode, core.NewDiversity(core.DefaultParams(5)), 15)
		cfg.Duration = time.Hour
		cfg.Workers = workers
		return cfg
	}
	ref, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	_, snap, err := RunWithCheckpoint(mk(1), 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		res, err := Resume(mk(w), snap)
		if err != nil {
			t.Fatalf("resume with %d workers: %v", w, err)
		}
		if res.Fingerprint() != want {
			t.Errorf("intra-ISD resumed fingerprint with %d workers differs", w)
		}
	}
}

// TestCheckpointRejectsBadInput locks in the guard rails: observer state,
// out-of-range checkpoint times, corrupt snapshots, and config/snapshot
// disagreement all fail loudly instead of silently diverging.
func TestCheckpointRejectsBadInput(t *testing.T) {
	topo := checkpointTopo(t)
	cfg := DefaultRunConfig(topo, CoreMode, core.NewBaseline(5), 15)
	cfg.Duration = 40 * time.Minute

	telem := cfg
	telem.Telemetry = telemetry.NewRegistry()
	if _, _, err := RunWithCheckpoint(telem, 20*time.Minute); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("telemetry run: got %v, want unsupported error", err)
	}
	if _, _, err := RunWithCheckpoint(cfg, 2*cfg.Duration); err == nil {
		t.Error("checkpoint beyond duration: want error")
	}
	if _, _, err := RunWithCheckpoint(cfg, 0); err == nil {
		t.Error("checkpoint at zero: want error")
	}

	_, snap, err := RunWithCheckpoint(cfg, 20*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(cfg, snap[:len(snap)-3]); err == nil {
		t.Error("truncated snapshot: want error")
	}
	bad := append([]byte(nil), snap...)
	bad[len(bad)-1] ^= 0xff
	if _, err := Resume(cfg, bad); err == nil {
		t.Error("corrupted snapshot: want error")
	}
	withChaos := cfg
	withChaos.Chaos = &chaos.Schedule{Seed: 1}
	if _, err := Resume(withChaos, snap); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("chaos mismatch: got %v, want chaos presence error", err)
	}
}
