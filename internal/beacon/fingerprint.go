package beacon

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"scionmpr/internal/chaos"
)

// Fingerprint digests every observable of the run — per-server stats and
// store contents, per-interface traffic counters, drop counters, executed
// event count, and chaos injection counts — into one SHA-256 value. Two
// runs of the same configuration must produce identical fingerprints
// regardless of the simulator's worker count; the determinism regression
// tests assert exactly that.
func (r *RunResult) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var scratch [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	// Servers in deterministic topology order: stats plus full store
	// contents (the store's Entries order is itself deterministic).
	for _, ia := range r.Cfg.Topo.IAs() {
		srv := r.Servers[ia]
		if srv == nil {
			continue
		}
		w64(ia.Uint64())
		w64(srv.Originated)
		w64(srv.Propagated)
		w64(srv.Received)
		w64(srv.Rejected)
		w64(srv.DroppedWhileDown)
		store := srv.Store()
		for _, origin := range store.Origins() {
			w64(origin.Uint64())
			for _, e := range store.Entries(r.End, origin) {
				enc := e.PCB.Encode()
				w64(uint64(len(enc)))
				h.Write(enc)
				w64(uint64(e.Ingress))
				w64(uint64(e.ReceivedAt))
			}
		}
	}

	// Network traffic: every interface that saw traffic, in sorted order,
	// with its full counter, plus the drop counters.
	for _, k := range r.Net.Interfaces() {
		c := r.Net.InterfaceCounter(k.IA, k.If)
		w64(k.IA.Uint64())
		w64(uint64(k.If))
		w64(c.TxBytes)
		w64(c.TxMsgs)
		w64(c.RxBytes)
		w64(c.RxMsgs)
	}
	w64(r.Net.Dropped)
	w64(r.Net.DroppedOnFailedLinks)
	w64(r.Net.DroppedByLoss)
	w64(r.Net.GrandTotalTx())

	w64(r.Sim.Executed)
	w64(uint64(r.End))

	if r.Chaos != nil {
		kinds := make([]int, 0, len(r.Chaos.Injections))
		for k := range r.Chaos.Injections {
			kinds = append(kinds, int(k))
		}
		sort.Ints(kinds)
		for _, k := range kinds {
			w64(uint64(k))
			w64(r.Chaos.Injections[chaos.Kind(k)])
		}
	}

	// Telemetry, when enabled, extends the determinism guarantee: the
	// deterministic metric snapshot and the trace ring's JSONL encoding
	// must also be byte-identical for every worker count.
	if r.Cfg.Telemetry != nil {
		var buf bytes.Buffer
		r.Cfg.Telemetry.WriteSnapshot(&buf) //nolint:errcheck // Buffer writes cannot fail
		w64(uint64(buf.Len()))
		h.Write(buf.Bytes())
	}
	if r.Cfg.Tracer != nil {
		var buf bytes.Buffer
		r.Cfg.Tracer.WriteJSONL(&buf) //nolint:errcheck // Buffer writes cannot fail
		w64(r.Cfg.Tracer.Dropped)
		w64(uint64(buf.Len()))
		h.Write(buf.Bytes())
	}

	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
