package beacon

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/core"
	"scionmpr/internal/topology"
)

// System-wide invariants checked over a full beaconing run on a generated
// topology: stores respect their per-origin limits, no stored beacon
// contains a loop or a foreign-mode relationship violation, every stored
// beacon's links resolve against the topology, and all disseminated path
// sets stay within the optimum.
func TestBeaconingInvariants(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 150
	p.Tier1 = 6
	full := topology.MustGenerate(p)
	coreTopo, err := topology.ExtractCore(full, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		factory core.Factory
	}{
		{"baseline", core.NewBaseline(5)},
		{"diversity", core.NewDiversity(core.DefaultParams(5))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultRunConfig(coreTopo, CoreMode, tc.factory, 15)
			cfg.Duration = 2 * time.Hour
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for ia, srv := range res.Servers {
				store := srv.Store()
				for _, origin := range store.Origins() {
					entries := store.Entries(res.End, origin)
					if cfg.StoreLimit > 0 && len(entries) > cfg.StoreLimit {
						t.Errorf("%s: %d beacons for %s exceed limit %d", ia, len(entries), origin, cfg.StoreLimit)
					}
					for _, e := range entries {
						// No loops.
						seen := map[addr.IA]bool{}
						for _, hop := range e.PCB.IAs() {
							if seen[hop] {
								t.Fatalf("%s: loop in stored beacon %v", ia, e.PCB)
							}
							seen[hop] = true
						}
						if seen[ia] {
							t.Fatalf("%s: stored beacon already contains the local AS", ia)
						}
						// Origin consistency.
						if e.PCB.Origin() != origin {
							t.Fatalf("%s: beacon filed under wrong origin", ia)
						}
						// Every link resolves and is a core link.
						for _, lk := range e.PCB.Links() {
							l := coreTopo.LinkByIf(lk.IA, lk.If)
							if l == nil {
								t.Fatalf("%s: unresolvable link %v", ia, lk)
							}
							if l.Rel != topology.Core {
								t.Fatalf("%s: non-core link %v in core beacon", ia, l)
							}
						}
						// Valid at end time (Entries filters expired).
						if e.PCB.Expired(res.End) {
							t.Fatalf("%s: expired beacon returned", ia)
						}
					}
				}
			}
		})
	}
}

// Intra-ISD invariant: stored beacons strictly descend the provider
// hierarchy (every link is provider-to-customer in beacon direction).
func TestIntraISDBeaconsDescendHierarchy(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 150
	p.Tier1 = 6
	full := topology.MustGenerate(p)
	isd, err := topology.BuildISD(full, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig(isd, IntraMode, core.NewBaseline(5), 10)
	cfg.Duration = 2 * time.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, srv := range res.Servers {
		store := srv.Store()
		for _, origin := range store.Origins() {
			for _, e := range store.Entries(res.End, origin) {
				for _, lk := range e.PCB.Links() {
					l := isd.LinkByIf(lk.IA, lk.If)
					if l == nil {
						t.Fatal("unresolvable intra-ISD link")
					}
					// Beacon direction: upstream side lk.IA must be the
					// provider (l.A for ProviderOf links) or a core AS
					// (first hop off the core).
					if l.Rel == topology.ProviderOf && l.A != lk.IA {
						t.Fatalf("beacon climbed up a customer link: %v via %v", e.PCB, l)
					}
					if l.Rel == topology.PeerOf {
						t.Fatalf("beacon traversed a peering link: %v", e.PCB)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no links checked")
	}
}
