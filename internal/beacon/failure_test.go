package beacon

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/core"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// A link failure halfway through the run: beacons must stop crossing the
// failed link, revocation must purge it from every store, and the
// network must re-disseminate alternatives so connectivity survives
// (topology remains connected without the link).
func TestLiveLinkFailureRecovery(t *testing.T) {
	demo := topology.Demo()
	keep := map[addr.IA]bool{}
	for _, ia := range demo.CoreIAs() {
		keep[ia] = true
	}
	coreTopo := demo.Subgraph(keep)
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	b1 := addr.MustIA(2, 0xff00_0000_0201)
	failLink := coreTopo.LinksBetween(a1, b1)[0]

	for _, tc := range []struct {
		name    string
		factory core.Factory
	}{
		{"baseline", core.NewBaseline(5)},
		{"diversity", core.NewDiversity(core.DefaultParams(5))},
		{"latency", core.NewLatencyAware(5, core.UniformLatency(time.Millisecond))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultRunConfig(coreTopo, CoreMode, tc.factory, 20)
			cfg.Duration = 6 * time.Hour
			cfg.Failures = []LinkFailure{{After: 3 * time.Hour, Link: failLink}}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Net.DroppedOnFailedLinks == 0 {
				t.Error("no beacons were dropped on the failed link (nothing was flowing?)")
			}
			// No stored beacon may still traverse the failed link: the
			// revocation purged existing ones and the dead link carried
			// nothing new.
			for ia, srv := range res.Servers {
				for _, origin := range srv.Store().Origins() {
					for _, e := range srv.Store().Entries(res.End, origin) {
						for _, lk := range e.PCB.Links() {
							l := coreTopo.LinkByIf(lk.IA, lk.If)
							if l != nil && l.ID == failLink.ID {
								t.Fatalf("%s still stores a beacon over the failed link", ia)
							}
						}
					}
				}
			}
			// Connectivity survives: every pair still has paths.
			cores := coreTopo.CoreIAs()
			for _, src := range cores {
				for _, dst := range cores {
					if src != dst && len(res.PathSet(src, dst)) == 0 {
						t.Errorf("lost connectivity %s -> %s after failure", src, dst)
					}
				}
			}
		})
	}
}

// Revoking selector state matters: after a failure, the diversity
// algorithm clears Sent-PCB records and rolls back link counters, so
// paths over the surviving links regain diversity headroom.
func TestDiversityRevokeClearsSentState(t *testing.T) {
	neighbor := addr.MustIA(1, 200)
	d := core.NewDiversity(core.DefaultParams(5))(addr.MustIA(1, 1)).(*core.Diversity)
	p := mkPCB(t, org, 0, 6*hour, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2})

	if n := len(d.Select(0, org, neighbor, []addr.IfID{9}, []*seg.PCB{p})); n != 1 {
		t.Fatal("first send failed")
	}
	if n := len(d.Select(10*sim.Time(time.Minute), org, neighbor, []addr.IfID{9}, []*seg.PCB{p})); n != 0 {
		t.Fatal("immediate resend not suppressed")
	}
	// The path used link 1-100#1; revoking it clears the record and the
	// counters, so the (re-offered) path is treated as fresh again.
	d.Revoke(seg.LinkKey{IA: addr.MustIA(1, 100), If: 1})
	if c := d.HistoryCounter(org, neighbor, seg.LinkKey{IA: addr.MustIA(1, 100), If: 1}); c != 0 {
		t.Errorf("counter after revoke = %d, want 0", c)
	}
	if n := len(d.Select(20*sim.Time(time.Minute), org, neighbor, []addr.IfID{9}, []*seg.PCB{p})); n != 1 {
		t.Error("path not re-sent after revocation")
	}
	// Revoking an unknown link is a no-op.
	d.Revoke(seg.LinkKey{IA: addr.MustIA(9, 9), If: 1})
}

// TestLinkRecoveryRepopulatesStores is the reinstatement half of the
// failure reaction: after the failed link heals, neighbors re-propagate
// over it at their next interval and beacons traversing it reappear in
// the stores — soft revocation state does not outlive the outage.
func TestLinkRecoveryRepopulatesStores(t *testing.T) {
	demo := topology.Demo()
	keep := map[addr.IA]bool{}
	for _, ia := range demo.CoreIAs() {
		keep[ia] = true
	}
	coreTopo := demo.Subgraph(keep)
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	b1 := addr.MustIA(2, 0xff00_0000_0201)
	failLink := coreTopo.LinksBetween(a1, b1)[0]

	segsOverLink := func(res *RunResult) int {
		n := 0
		for _, srv := range res.Servers {
			for _, origin := range srv.Store().Origins() {
				for _, e := range srv.Store().Entries(res.End, origin) {
					for _, lk := range e.PCB.Links() {
						l := coreTopo.LinkByIf(lk.IA, lk.If)
						if l != nil && l.ID == failLink.ID {
							n++
						}
					}
				}
			}
		}
		return n
	}
	for _, tc := range []struct {
		name    string
		factory core.Factory
	}{
		{"baseline", core.NewBaseline(5)},
		{"diversity", core.NewDiversity(core.DefaultParams(5))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultRunConfig(coreTopo, CoreMode, tc.factory, 20)
			cfg.Duration = 6 * time.Hour
			cfg.Failures = []LinkFailure{{After: 2 * time.Hour, Link: failLink, Recover: time.Hour}}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Net.DroppedOnFailedLinks == 0 {
				t.Error("the outage dropped nothing — failure not injected?")
			}
			if n := segsOverLink(res); n == 0 {
				t.Error("no stored beacon traverses the healed link: reinstatement failed")
			}
		})
	}
}
