package beacon

import (
	"fmt"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/chaos"
	"scionmpr/internal/core"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// RunConfig describes one beaconing simulation, defaulting to the paper's
// setup (§5.1): six hours of beaconing, ten-minute intervals, six-hour PCB
// lifetime, dissemination limit 5, and a configurable PCB storage limit.
type RunConfig struct {
	Topo     *topology.Graph
	Mode     Mode
	Selector core.Factory
	// StoreLimit is the per-origin PCB storage limit (<= 0: unlimited).
	StoreLimit int
	Interval   time.Duration
	Lifetime   time.Duration
	Duration   time.Duration
	LinkDelay  time.Duration
	// Verify enables cryptographic verification of every received PCB.
	Verify bool
	// Infra supplies key material; a Sized-mode Infra is built if nil.
	Infra *trust.Infra
	// Policies are per-AS beaconing policies (nil entries allow all).
	Policies map[addr.IA]*Policy
	// Failures injects link failures at the given virtual times: the
	// link stops carrying beacons and every beacon server revokes
	// affected state.
	Failures []LinkFailure
	// Chaos, if set, applies a full fault-injection schedule to the run:
	// flaps, gray failures, latency spikes, and beacon-server crashes.
	// Link failures trigger the same revocation reaction as Failures;
	// on restore, neighbors re-propagate over the healed link at their
	// next interval, repopulating the revoked state.
	Chaos *chaos.Schedule
	// Workers is the simulator's parallel worker count: 1 forces
	// sequential execution, 0 resolves the default (SCIONMPR_WORKERS or
	// GOMAXPROCS). Beacon servers are independent per-AS actors, so
	// same-timestamp ticks and deliveries run on a worker pool; the
	// result is byte-identical for every setting (see internal/sim).
	Workers int
	// Telemetry, if set, receives sharded counters from every subsystem
	// of the run; its deterministic snapshot is folded into Fingerprint.
	Telemetry *telemetry.Registry
	// Tracer, if set, records structured trace events (origination,
	// propagation, filtering, chaos faults) in deterministic order; its
	// JSONL encoding is folded into Fingerprint.
	Tracer *telemetry.Tracer
}

// LinkFailure schedules one link failure during a run. A positive
// Recover restores the link that much later: beacon servers then
// re-learn paths over it at the next beaconing interval.
type LinkFailure struct {
	After   time.Duration
	Link    *topology.Link
	Recover time.Duration
}

// DefaultRunConfig returns the paper's simulation parameters with the
// given topology and selector.
func DefaultRunConfig(topo *topology.Graph, mode Mode, selector core.Factory, storeLimit int) RunConfig {
	return RunConfig{
		Topo:       topo,
		Mode:       mode,
		Selector:   selector,
		StoreLimit: storeLimit,
		Interval:   10 * time.Minute,
		Lifetime:   6 * time.Hour,
		Duration:   6 * time.Hour,
		LinkDelay:  20 * time.Millisecond,
	}
}

// Run executes a beaconing simulation and returns the final state.
type RunResult struct {
	Cfg     RunConfig
	Sim     *sim.Simulator
	Net     *sim.Network
	Servers map[addr.IA]*Server
	// Chaos is the fault-injection engine, set when Cfg.Chaos was applied
	// (its per-kind injection counts summarize what the run endured).
	Chaos *chaos.Engine
	// End is the final virtual time.
	End sim.Time
}

// runActors bundles the constructed simulation actors. Run and Resume
// share the construction (buildActors) but differ in how the event
// population is (re)created: a fresh run registers ticks, then failures,
// then the chaos plan; a resumed run registers failures, then chaos, then
// ticks, which reproduces the relative sequence ordering the original
// run's pending events had at the checkpoint (setup-registered fault
// actions carry smaller sequence numbers than self-rescheduled ticks).
type runActors struct {
	infra   *trust.Infra
	s       *sim.Simulator
	net     *sim.Network
	servers map[addr.IA]*Server
	end     sim.Time
}

// buildActors validates cfg and constructs the simulator, network, and
// beacon servers, without scheduling any events.
func buildActors(cfg RunConfig) (*runActors, error) {
	if cfg.Topo == nil || cfg.Selector == nil {
		return nil, fmt.Errorf("beacon: run config missing topology or selector")
	}
	if cfg.Interval <= 0 || cfg.Lifetime <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("beacon: run config has non-positive timing")
	}
	infra := cfg.Infra
	if infra == nil {
		var err error
		infra, err = trust.NewInfra(cfg.Topo, trust.Sized)
		if err != nil {
			return nil, err
		}
	}
	s := &sim.Simulator{}
	s.SetWorkers(cfg.Workers)
	s.SetTracer(cfg.Tracer)
	s.SetTelemetry(cfg.Telemetry)
	net := sim.NewNetwork(s, cfg.Topo, cfg.LinkDelay)
	net.SetTelemetry(cfg.Telemetry)
	// Each beacon server touches only its own AS's state in its handler
	// and tick, so ASes are sharded into parallel actors.
	net.EnableSharding()
	servers := map[addr.IA]*Server{}
	var verifier trust.Verifier
	if cfg.Verify {
		verifier = infra
	}
	for _, ia := range cfg.Topo.IAs() {
		srv, err := NewServer(ServerConfig{
			Local:       ia,
			Topo:        cfg.Topo,
			Net:         net,
			Signer:      infra.SignerFor(ia),
			Verifier:    verifier,
			Selector:    cfg.Selector(ia),
			StoreLimit:  cfg.StoreLimit,
			Mode:        cfg.Mode,
			PCBLifetime: cfg.Lifetime,
			Policy:      cfg.Policies[ia],
		})
		if err != nil {
			return nil, err
		}
		srv.SetTelemetry(cfg.Telemetry)
		servers[ia] = srv
	}
	return &runActors{infra: infra, s: s, net: net, servers: servers, end: sim.Time(cfg.Duration)}, nil
}

// scheduleTicks registers the per-AS beaconing intervals, starting at the
// simulator's current time (zero for a fresh run, the checkpoint time for
// a resumed one — where the original run's tick events for that timestamp
// were pending but unexecuted).
func (a *runActors) scheduleTicks(cfg RunConfig) {
	for _, ia := range cfg.Topo.IAs() {
		srv := a.servers[ia]
		a.s.EveryShard(a.net.Shard(ia), 0, cfg.Interval, a.end, srv.Tick)
	}
}

// revokeAllFunc builds the link-failure reaction shared by scheduled
// failures and chaos faults.
func (a *runActors) revokeAllFunc(cfg RunConfig) func(*topology.Link) {
	return func(l *topology.Link) {
		for _, ia := range cfg.Topo.IAs() {
			a.servers[ia].HandleLinkFailure(l)
		}
	}
}

// scheduleFailures registers the configured link failures, skipping
// actions strictly before `from` (already applied and captured in the
// network state on a resumed run; actions at exactly `from` were pending
// and unexecuted at the checkpoint, so they are re-registered).
func (a *runActors) scheduleFailures(cfg RunConfig, from sim.Time, revokeAll func(*topology.Link)) {
	for _, f := range cfg.Failures {
		f := f
		at := sim.Time(f.After)
		if at < 0 {
			at = 0
		}
		if at >= from {
			a.s.At(at, func() {
				a.net.FailLink(f.Link.ID)
				revokeAll(f.Link)
			})
		}
		if f.Recover > 0 {
			rec := sim.Time(f.After + f.Recover)
			if rec < 0 {
				rec = 0
			}
			if rec >= from {
				a.s.At(rec, func() {
					a.net.RestoreLink(f.Link.ID)
				})
			}
		}
	}
}

// applyChaos builds the fault-injection engine and registers the
// surviving plan actions. state, when non-nil, restores the engine's
// bookkeeping (overlap depths, injection counts) from a checkpoint before
// the plan is re-derived; Apply itself drops actions in the simulated
// past, so a resumed engine re-registers exactly the actions that were
// pending at the checkpoint.
func (a *runActors) applyChaos(cfg RunConfig, revokeAll func(*topology.Link), state []byte) (*chaos.Engine, error) {
	if cfg.Chaos == nil {
		return nil, nil
	}
	eng := chaos.NewEngine(a.s, a.net)
	eng.SetTelemetry(cfg.Telemetry)
	eng.AddCrashTarget(serverCrashTarget{a.servers})
	eng.OnFail = func(id topology.LinkID) {
		if l := cfg.Topo.LinkByID(id); l != nil {
			revokeAll(l)
		}
	}
	if state != nil {
		if err := eng.RestoreState(state); err != nil {
			return nil, err
		}
	}
	if err := eng.Apply(cfg.Chaos); err != nil {
		return nil, err
	}
	return eng, nil
}

// finish drains the event queue and assembles the result.
func (a *runActors) finish(cfg RunConfig, eng *chaos.Engine) *RunResult {
	a.s.RunUntil(a.end)
	// Drain in-flight deliveries scheduled before the end time.
	final := a.s.Run()
	if final < a.end {
		final = a.end
	}
	return &RunResult{Cfg: cfg, Sim: a.s, Net: a.net, Servers: a.servers, Chaos: eng, End: final}
}

// Run builds the beacon servers, schedules interval ticks for the whole
// duration, and drains the event queue.
func Run(cfg RunConfig) (*RunResult, error) {
	a, err := buildActors(cfg)
	if err != nil {
		return nil, err
	}
	a.scheduleTicks(cfg)
	revokeAll := a.revokeAllFunc(cfg)
	a.scheduleFailures(cfg, 0, revokeAll)
	eng, err := a.applyChaos(cfg, revokeAll, nil)
	if err != nil {
		return nil, err
	}
	return a.finish(cfg, eng), nil
}

// serverCrashTarget adapts the server map to chaos.CrashTarget.
type serverCrashTarget struct {
	servers map[addr.IA]*Server
}

func (t serverCrashTarget) Crash(ia addr.IA) {
	if s := t.servers[ia]; s != nil {
		s.SetDown(true)
	}
}

func (t serverCrashTarget) Restart(ia addr.IA) {
	if s := t.servers[ia]; s != nil {
		s.SetDown(false)
	}
}

// PathSet returns the disseminated paths from origin available at dst as
// link sequences resolved against the topology, ready for the
// resilience/capacity metrics. Unresolvable links (should not happen on a
// consistent topology) are skipped along with their path.
func (r *RunResult) PathSet(origin, dst addr.IA) [][]graphalg.PathLink {
	srv := r.Servers[dst]
	if srv == nil || origin == dst {
		return nil
	}
	var out [][]graphalg.PathLink
	for _, links := range srv.Segments(r.End, origin) {
		pl := make([]graphalg.PathLink, 0, len(links))
		ok := true
		for _, lk := range links {
			l := r.Cfg.Topo.LinkByIf(lk.IA, lk.If)
			if l == nil {
				ok = false
				break
			}
			pl = append(pl, graphalg.PathLink{A: l.A, B: l.B, ID: l.ID})
		}
		if ok && len(pl) > 0 {
			out = append(out, pl)
		}
	}
	return out
}

// Quality computes the Figure 6a/6b metric for one AS pair: the max-flow
// over the union of disseminated paths from src to dst.
func (r *RunResult) Quality(src, dst addr.IA) int {
	return graphalg.UnionFlow(r.PathSet(src, dst), src, dst)
}

// TotalOverheadBytes is the total control-plane bytes transmitted.
func (r *RunResult) TotalOverheadBytes() uint64 { return r.Net.GrandTotalTx() }

// MonitorRxBytes returns received control-plane bytes at the given
// "monitor" ASes, the Figure 5 observable.
func (r *RunResult) MonitorRxBytes(monitors []addr.IA) []uint64 {
	out := make([]uint64, len(monitors))
	for i, ia := range monitors {
		out[i] = r.Net.TotalRx(ia)
	}
	return out
}

// RevokeLink removes beacons traversing the failed link from every
// beacon server's store and returns the total number of beacons dropped.
// Combined with pathdb revocation and data-plane SCMP, this completes the
// paper's link-failure reaction (§4.1).
func (r *RunResult) RevokeLink(link *topology.Link) int {
	// Beacons key a link by its upstream side, which is either endpoint
	// depending on the direction the beacon traveled; revoke both.
	keys := []seg.LinkKey{
		{IA: link.A, If: link.AIf},
		{IA: link.B, If: link.BIf},
	}
	dropped := 0
	for _, srv := range r.Servers {
		for _, key := range keys {
			dropped += srv.Store().RevokeLink(key)
		}
	}
	return dropped
}

// PerInterfaceBandwidth returns the average transmitted bytes/second per
// traffic-bearing interface over the run (Figure 9).
func (r *RunResult) PerInterfaceBandwidth() []float64 {
	secs := time.Duration(r.End).Seconds()
	if secs <= 0 {
		return nil
	}
	bytes := r.Net.PerInterfaceTxBytes()
	out := make([]float64, len(bytes))
	for i, b := range bytes {
		out[i] = float64(b) / secs
	}
	return out
}
