package beacon

import (
	"math/rand"
	"sort"
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// storeModel is a deliberately naive reference implementation of Store:
// a plain nested map with full recomputation on every query. The real
// store maintains incremental caches (minExpiry lower bound, worst
// eviction candidate, maintained sort order, origin list cache); the
// model re-derives everything from scratch, so any cache-update bug
// shows up as a divergence.
type storeModel struct {
	limit    int
	byOrigin map[addr.IA]map[storeKey]*Entry
}

func newStoreModel(limit int) *storeModel {
	return &storeModel{limit: limit, byOrigin: map[addr.IA]map[storeKey]*Entry{}}
}

// modelWorse reimplements the eviction order independently of worse():
// longer paths first, then earlier expiry, then hop key, then ingress.
func modelWorse(a, b *Entry) bool {
	if a.PCB.NumHops() != b.PCB.NumHops() {
		return a.PCB.NumHops() > b.PCB.NumHops()
	}
	if a.PCB.Info.Expiry != b.PCB.Info.Expiry {
		return a.PCB.Info.Expiry < b.PCB.Info.Expiry
	}
	if a.PCB.HopsKey() != b.PCB.HopsKey() {
		return a.PCB.HopsKey() > b.PCB.HopsKey()
	}
	return a.Ingress > b.Ingress
}

// modelLess reimplements the presentation order independently of
// entryLess(): shortest first, then hop key, then ingress.
func modelLess(a, b *Entry) bool {
	if a.PCB.NumHops() != b.PCB.NumHops() {
		return a.PCB.NumHops() < b.PCB.NumHops()
	}
	if a.PCB.HopsKey() != b.PCB.HopsKey() {
		return a.PCB.HopsKey() < b.PCB.HopsKey()
	}
	return a.Ingress < b.Ingress
}

// dropExpired mirrors the store's sweep trigger points exactly; expired
// entries stay resident (occupying capacity) until one fires.
func (m *storeModel) dropExpired(now sim.Time, origin addr.IA) {
	set := m.byOrigin[origin]
	for k, e := range set {
		if e.PCB.Expired(now) {
			delete(set, k)
		}
	}
}

func (m *storeModel) insert(now sim.Time, p *seg.PCB, ingress addr.IfID) bool {
	if p.Expired(now) {
		return false
	}
	origin := p.Origin()
	set := m.byOrigin[origin]
	if set == nil {
		set = map[storeKey]*Entry{}
		m.byOrigin[origin] = set
	}
	key := entryKey(p, ingress)
	if old, ok := set[key]; ok {
		if p.Info.Expiry > old.PCB.Info.Expiry {
			set[key] = &Entry{PCB: p, Ingress: ingress, ReceivedAt: now}
		}
		return true
	}
	if m.limit > 0 && len(set) >= m.limit {
		m.dropExpired(now, origin)
	}
	if m.limit > 0 && len(set) >= m.limit {
		// Full recomputation of the eviction candidate.
		var worst *Entry
		var worstKey storeKey
		for k, e := range set {
			if worst == nil || modelWorse(e, worst) {
				worst, worstKey = e, k
			}
		}
		better := p.NumHops() < worst.PCB.NumHops() ||
			(p.NumHops() == worst.PCB.NumHops() && p.Info.Expiry > worst.PCB.Info.Expiry)
		if !better {
			return false
		}
		delete(set, worstKey)
	}
	set[key] = &Entry{PCB: p, Ingress: ingress, ReceivedAt: now}
	return true
}

func (m *storeModel) entries(now sim.Time, origin addr.IA) []*Entry {
	m.dropExpired(now, origin)
	set := m.byOrigin[origin]
	out := make([]*Entry, 0, len(set))
	for _, e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return modelLess(out[i], out[j]) })
	return out
}

func (m *storeModel) prune(now sim.Time) {
	for origin := range m.byOrigin {
		m.dropExpired(now, origin)
		if len(m.byOrigin[origin]) == 0 {
			delete(m.byOrigin, origin)
		}
	}
}

func (m *storeModel) revokeLink(link seg.LinkKey) int {
	dropped := 0
	for origin, set := range m.byOrigin {
		for k, e := range set {
			for _, lk := range e.PCB.Links() {
				if lk == link {
					delete(set, k)
					dropped++
					break
				}
			}
		}
		if len(set) == 0 {
			delete(m.byOrigin, origin)
		}
	}
	return dropped
}

func (m *storeModel) origins() []addr.IA {
	out := make([]addr.IA, 0, len(m.byOrigin))
	for ia, set := range m.byOrigin {
		if len(set) > 0 {
			out = append(out, ia)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (m *storeModel) len() int {
	n := 0
	for _, set := range m.byOrigin {
		n += len(set)
	}
	return n
}

// checkCaches compares the store's internal caches with full naive
// recomputation. It does not mutate either side, so lazily-swept
// expired entries survive to exercise Insert's sweep path later.
func checkCaches(t *testing.T, step int, s *Store, m *storeModel) {
	t.Helper()
	if s.Len() != m.len() {
		t.Fatalf("step %d: Len = %d, model %d", step, s.Len(), m.len())
	}
	// Internal cache invariants, recomputed naively per origin.
	for origin, os := range s.byOrigin {
		var naiveWorst *Entry
		minExp := maxTime
		for _, e := range os.m {
			if naiveWorst == nil || modelWorse(e, naiveWorst) {
				naiveWorst = e
			}
			if e.PCB.Info.Expiry < minExp {
				minExp = e.PCB.Info.Expiry
			}
		}
		if os.minExpiry > minExp {
			t.Fatalf("step %d: %s: cached minExpiry %v above true minimum %v", step, origin, os.minExpiry, minExp)
		}
		if os.worst != nil && naiveWorst != nil && os.worst != naiveWorst {
			t.Fatalf("step %d: %s: cached worst %v+%d, recomputed %v+%d", step, origin,
				os.worst.PCB.HopsKey(), os.worst.Ingress, naiveWorst.PCB.HopsKey(), naiveWorst.Ingress)
		}
		if os.sorted != nil {
			if len(os.sorted) != len(os.m) {
				t.Fatalf("step %d: %s: maintained order has %d entries, map %d", step, origin, len(os.sorted), len(os.m))
			}
			for i := 1; i < len(os.sorted); i++ {
				if !modelLess(os.sorted[i-1], os.sorted[i]) {
					t.Fatalf("step %d: %s: maintained order violated at %d", step, origin, i)
				}
			}
		}
	}
}

// checkObservables compares every observable of the store with the
// naive model. Entries sweeps lazily on both sides, so this mutates —
// call it sparsely, or the lazy-expiry paths are never exercised.
func checkObservables(t *testing.T, step int, now sim.Time, s *Store, m *storeModel) {
	t.Helper()
	// Observable equivalence, per origin known to either side.
	seen := map[addr.IA]bool{}
	for _, ia := range s.Origins() {
		seen[ia] = true
	}
	for _, ia := range m.origins() {
		seen[ia] = true
	}
	for origin := range seen {
		got := s.Entries(now, origin)
		want := m.entries(now, origin)
		if len(got) != len(want) {
			t.Fatalf("step %d: %s: Entries returned %d, model %d", step, origin, len(got), len(want))
		}
		for i := range want {
			if got[i].PCB != want[i].PCB || got[i].Ingress != want[i].Ingress {
				t.Fatalf("step %d: %s: entry %d differs: %v+%d vs %v+%d", step, origin, i,
					got[i].PCB.HopsKey(), got[i].Ingress, want[i].PCB.HopsKey(), want[i].Ingress)
			}
		}
	}
	// Origins after the Entries sweeps above: both sides canonical.
	gotOrigins, wantOrigins := s.Origins(), m.origins()
	if len(gotOrigins) != len(wantOrigins) {
		t.Fatalf("step %d: Origins = %v, model %v", step, gotOrigins, wantOrigins)
	}
	for i := range wantOrigins {
		if gotOrigins[i] != wantOrigins[i] {
			t.Fatalf("step %d: Origins = %v, model %v", step, gotOrigins, wantOrigins)
		}
	}
}

// TestStorePropertyVsNaiveModel drives randomized operation sequences —
// inserts (fresh paths, duplicate paths, near-expiry beacons), clock
// advances that expire entries, prunes and link revocations — through
// the incremental store and the naive model in lockstep.
func TestStorePropertyVsNaiveModel(t *testing.T) {
	origins := []addr.IA{addr.MustIA(1, 100), addr.MustIA(1, 101), addr.MustIA(2, 200)}
	for _, limit := range []int{0, 1, 4} {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			s := NewStore(limit)
			m := newStoreModel(limit)
			now := sim.Time(0)
			steps := 600
			if testing.Short() {
				steps = 150
			}
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(100); {
				case op < 70: // insert
					origin := origins[rng.Intn(len(origins))]
					// Small value spaces force key collisions (dedup),
					// equal-rank ties and eviction races.
					nHops := 1 + rng.Intn(3)
					hops := make([][3]uint64, nHops)
					for i := range hops {
						hops[i] = [3]uint64{uint64(10 + rng.Intn(4)), uint64(rng.Intn(3)), uint64(1 + rng.Intn(3))}
					}
					life := sim.Time(1+rng.Intn(20)) * hour / 10
					p := mkPCB(t, origin, now, life, hops...)
					ingress := addr.IfID(1 + rng.Intn(3))
					got := s.Insert(now, p, ingress)
					want := m.insert(now, p, ingress)
					if got != want {
						t.Fatalf("limit=%d seed=%d step %d: Insert = %v, model %v (origin %s, %d hops, life %v)",
							limit, seed, step, got, want, origin, nHops, life)
					}
				case op < 85: // advance the clock, expiring beacons
					now += sim.Time(rng.Intn(40)) * hour / 40
				case op < 92: // read one origin (triggers lazy sweeps)
					origin := origins[rng.Intn(len(origins))]
					_ = s.Entries(now, origin)
					_ = m.entries(now, origin)
				case op < 96: // revoke a random link
					link := seg.LinkKey{IA: addr.MustIA(1, addr.AS(10+rng.Intn(4))), If: addr.IfID(1 + rng.Intn(3))}
					if got, want := s.RevokeLink(link), m.revokeLink(link); got != want {
						t.Fatalf("limit=%d seed=%d step %d: RevokeLink = %d, model %d", limit, seed, step, got, want)
					}
				default: // prune
					s.Prune(now)
					m.prune(now)
				}
				checkCaches(t, step, s, m)
				if step%17 == 16 {
					checkObservables(t, step, now, s, m)
				}
			}
			checkObservables(t, steps, now, s, m)
		}
	}
}
