package combinator

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/core"
	"scionmpr/internal/seg"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// fixture runs core and intra-ISD beaconing on the Figure 1 demo topology
// and exposes terminated segments, mirroring how the control plane feeds
// the path servers.
type fixture struct {
	topo     *topology.Graph
	infra    *trust.Infra
	coreRun  *beacon.RunResult
	intraRun *beacon.RunResult
}

var (
	a1 = addr.MustIA(1, 0xff00_0000_0101)
	a2 = addr.MustIA(1, 0xff00_0000_0102)
	a4 = addr.MustIA(1, 0xff00_0000_0104)
	a5 = addr.MustIA(1, 0xff00_0000_0105)
	a6 = addr.MustIA(1, 0xff00_0000_0106)
	b2 = addr.MustIA(2, 0xff00_0000_0202)
	b3 = addr.MustIA(2, 0xff00_0000_0203)
	b4 = addr.MustIA(2, 0xff00_0000_0204)
	b5 = addr.MustIA(2, 0xff00_0000_0205)
)

func newFixture(t *testing.T) *fixture {
	t.Helper()
	topo := topology.Demo()
	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(mode beacon.Mode) *beacon.RunResult {
		cfg := beacon.DefaultRunConfig(topo, mode, core.NewBaseline(5), 20)
		cfg.Duration = time.Hour
		cfg.Infra = infra
		res, err := beacon.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	return &fixture{topo: topo, infra: infra, coreRun: mk(beacon.CoreMode), intraRun: mk(beacon.IntraMode)}
}

// terminated returns the stored segments from origin at dst, terminated
// with dst's AS entry (including dst's peer entries so that peering
// shortcuts can be built).
func (f *fixture) terminated(t *testing.T, run *beacon.RunResult, origin, dst addr.IA) []*seg.PCB {
	t.Helper()
	srv := run.Servers[dst]
	var out []*seg.PCB
	var peers []seg.PeerEntry
	for _, l := range f.topo.AS(dst).Links {
		if l.Rel == topology.PeerOf {
			peers = append(peers, seg.PeerEntry{
				Peer:    l.Other(dst),
				PeerIf:  l.RemoteIf(dst),
				LocalIf: l.LocalIf(dst),
			})
		}
	}
	for _, e := range srv.Store().Entries(run.End, origin) {
		term, err := e.PCB.Extend(f.infra.SignerFor(dst), addr.IA{}, e.Ingress, 0, peers, 1472)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, term)
	}
	return out
}

func TestCombineThreeSegments(t *testing.T) {
	f := newFixture(t)
	ups := f.terminated(t, f.intraRun, b2, b3)   // up: B-2 -> B-3, used reversed
	cores := f.terminated(t, f.coreRun, a2, b2)  // core: A-2 -> B-2, used reversed
	downs := f.terminated(t, f.intraRun, a2, a6) // down: A-2 -> A-6
	if len(ups) == 0 || len(cores) == 0 || len(downs) == 0 {
		t.Fatalf("missing segments: up=%d core=%d down=%d", len(ups), len(cores), len(downs))
	}
	p, err := Combine(ups[0], cores[0], downs[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Src() != b3 || p.Dst() != a6 {
		t.Errorf("endpoints: %s -> %s", p.Src(), p.Dst())
	}
	if err := p.Check(f.topo); err != nil {
		t.Errorf("invalid interfaces: %v", err)
	}
	if p.ContainsLoop() {
		t.Errorf("loop in %v", p)
	}
	// The reverse path is also valid.
	rev := p.Reverse()
	if rev.Src() != a6 || rev.Dst() != b3 {
		t.Error("reverse endpoints wrong")
	}
	if err := rev.Check(f.topo); err != nil {
		t.Errorf("reverse invalid: %v", err)
	}
}

func TestCombineWithoutCoreSegment(t *testing.T) {
	f := newFixture(t)
	// Up to A-2 and down from A-2 join directly at the shared core.
	ups := f.terminated(t, f.intraRun, a2, a6)
	downs := f.terminated(t, f.intraRun, a2, a4)
	if len(ups) == 0 || len(downs) == 0 {
		t.Fatal("missing segments")
	}
	p, err := Combine(ups[0], nil, downs[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Src() != a6 || p.Dst() != a4 {
		t.Errorf("endpoints: %s -> %s", p.Src(), p.Dst())
	}
	if err := p.Check(f.topo); err != nil {
		t.Error(err)
	}
}

func TestCombineJunctionMismatch(t *testing.T) {
	f := newFixture(t)
	ups := f.terminated(t, f.intraRun, a1, a6)   // ends at A-1
	downs := f.terminated(t, f.intraRun, a2, a4) // starts at A-2
	if len(ups) == 0 || len(downs) == 0 {
		t.Fatal("missing segments")
	}
	if _, err := Combine(ups[0], nil, downs[0]); err == nil {
		t.Error("mismatched junction must fail")
	}
}

func TestShortcut(t *testing.T) {
	f := newFixture(t)
	// Up A-2 -> A-4 -> A-6 (at A-6) and down A-2 -> A-4 (at A-4) share
	// the non-core AS A-4: shortcut A-6 -> A-4 without touching A-2.
	var up *seg.PCB
	for _, cand := range f.terminated(t, f.intraRun, a2, a6) {
		ias := cand.IAs()
		if len(ias) == 3 && ias[1] == a4 {
			up = cand
		}
	}
	if up == nil {
		t.Fatal("no A-2 -> A-4 -> A-6 up segment found")
	}
	downs := f.terminated(t, f.intraRun, a2, a5)
	var down *seg.PCB
	for _, cand := range downs {
		ias := cand.IAs()
		if len(ias) == 3 && ias[1] == a4 {
			down = cand
		}
	}
	if down == nil {
		t.Fatal("no A-2 -> A-4 -> A-5 down segment found")
	}
	p, err := Shortcut(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if p.Src() != a6 || p.Dst() != a5 {
		t.Errorf("endpoints: %s -> %s", p.Src(), p.Dst())
	}
	for _, h := range p.Hops {
		if h.IA == a2 {
			t.Error("shortcut still crosses the core")
		}
	}
	if err := p.Check(f.topo); err != nil {
		t.Error(err)
	}
}

func TestShortcutNoJunction(t *testing.T) {
	f := newFixture(t)
	ups := f.terminated(t, f.intraRun, b2, b3)
	downs := f.terminated(t, f.intraRun, a2, a4)
	if len(ups) == 0 || len(downs) == 0 {
		t.Fatal("missing segments")
	}
	if _, err := Shortcut(ups[0], downs[0]); err == nil {
		t.Error("disjoint segments must not form a shortcut")
	}
}

func TestPeeringShortcut(t *testing.T) {
	f := newFixture(t)
	// Up A-1 -> A-3 -> A-5 -> A-6 at A-6 contains A-5, which peers with
	// B-4 on the down segment B-2 -> B-4 -> B-5 at B-5.
	var up *seg.PCB
	for _, cand := range f.terminated(t, f.intraRun, a1, a6) {
		for _, ia := range cand.IAs() {
			if ia == a5 {
				up = cand
			}
		}
	}
	if up == nil {
		t.Fatal("no up segment through A-5")
	}
	var down *seg.PCB
	for _, cand := range f.terminated(t, f.intraRun, b2, b5) {
		for _, ia := range cand.IAs() {
			if ia == b4 {
				down = cand
			}
		}
	}
	if down == nil {
		t.Fatal("no down segment through B-4")
	}
	p, err := PeeringShortcut(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if p.Src() != a6 || p.Dst() != b5 {
		t.Errorf("endpoints: %s -> %s", p.Src(), p.Dst())
	}
	// Valley-free: no core AS on the path.
	for _, h := range p.Hops {
		if f.topo.AS(h.IA).Core {
			t.Errorf("peering shortcut crosses core AS %s", h.IA)
		}
	}
	if err := p.Check(f.topo); err != nil {
		t.Error(err)
	}
}

func TestAllPaths(t *testing.T) {
	f := newFixture(t)
	ups := f.terminated(t, f.intraRun, b2, b3)
	cores := f.terminated(t, f.coreRun, a2, b2)
	downs := f.terminated(t, f.intraRun, a2, a6)
	paths := AllPaths(ups, cores, downs)
	if len(paths) == 0 {
		t.Fatal("no end-to-end paths")
	}
	for _, p := range paths {
		if p.Src() != b3 || p.Dst() != a6 {
			t.Errorf("bad endpoints %s -> %s", p.Src(), p.Dst())
		}
		if err := p.Check(f.topo); err != nil {
			t.Errorf("invalid path: %v", err)
		}
	}
}

func TestNotTerminatedRejected(t *testing.T) {
	f := newFixture(t)
	// Raw stored beacons are not terminated (last egress points at us).
	srv := f.intraRun.Servers[a6]
	entries := srv.Store().Entries(f.intraRun.End, a1)
	if len(entries) == 0 {
		t.Fatal("no stored beacons")
	}
	raw := entries[0].PCB
	if _, err := Combine(raw, nil, raw); err == nil {
		t.Error("unterminated segment accepted")
	}
	if _, err := Shortcut(raw, raw); err == nil {
		t.Error("unterminated segment accepted by Shortcut")
	}
	if _, err := Combine(nil, nil, nil); err == nil {
		t.Error("all-nil combine must fail")
	}
}

func TestPathLinksAndString(t *testing.T) {
	f := newFixture(t)
	downs := f.terminated(t, f.intraRun, a2, a6)
	p, err := Combine(nil, nil, downs[0])
	if err != nil {
		t.Fatal(err)
	}
	links := p.Links()
	if len(links) != len(p.Hops)-1 {
		t.Errorf("links = %d for %d hops", len(links), len(p.Hops))
	}
	if p.String() == "" || p.Hops[0].String() == "" {
		t.Error("empty stringers")
	}
	var empty Path
	if !empty.Src().IsZero() || !empty.Dst().IsZero() {
		t.Error("empty path endpoints must be zero")
	}
}
