// Package combinator builds end-to-end forwarding paths from path
// segments, implementing the combination rules of paper §2.2/§2.3: an
// end-to-end path consists of up to three segments (up, core, down); a
// shortcut omits the core segment by crossing over at a non-core AS
// common to the up- and down-segments; a peering shortcut joins the two
// segments over a peering link advertised in both.
//
// All segments are taken in beaconing direction (origin core AS first)
// and must be terminated: their last AS entry is the leaf with egress 0.
package combinator

import (
	"errors"
	"fmt"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/topology"
)

// Hop is one AS traversal: packets enter through In and leave through
// Out; 0 marks the path end (source's Out on the first hop is always
// non-zero unless the path is intra-AS).
type Hop struct {
	IA  addr.IA
	In  addr.IfID
	Out addr.IfID
}

func (h Hop) String() string { return fmt.Sprintf("%s %s>%s", h.IA, h.In, h.Out) }

// Path is an end-to-end forwarding path at interface granularity.
type Path struct {
	Hops []Hop
	// MTU is the end-to-end path MTU: the minimum of the AS-entry MTUs
	// of every segment used to build the path (0 if unknown).
	MTU uint16
}

// Src returns the first AS, or a zero IA for an empty path.
func (p *Path) Src() addr.IA {
	if len(p.Hops) == 0 {
		return addr.IA{}
	}
	return p.Hops[0].IA
}

// Dst returns the last AS.
func (p *Path) Dst() addr.IA {
	if len(p.Hops) == 0 {
		return addr.IA{}
	}
	return p.Hops[len(p.Hops)-1].IA
}

func (p *Path) String() string {
	s := "path["
	for i, h := range p.Hops {
		if i > 0 {
			s += " "
		}
		s += h.String()
	}
	return s + "]"
}

// Reverse returns the path in the opposite direction (SCION paths are
// bidirectional; up- and down-segments are interchangeable, §2.2).
func (p *Path) Reverse() *Path {
	out := &Path{Hops: make([]Hop, len(p.Hops)), MTU: p.MTU}
	for i, h := range p.Hops {
		out.Hops[len(p.Hops)-1-i] = Hop{IA: h.IA, In: h.Out, Out: h.In}
	}
	return out
}

// Links returns the traversed inter-domain links keyed by the upstream
// side, for failure analysis.
func (p *Path) Links() []seg.LinkKey {
	var out []seg.LinkKey
	for _, h := range p.Hops {
		if h.Out != 0 {
			out = append(out, seg.LinkKey{IA: h.IA, If: h.Out})
		}
	}
	return out
}

// Check validates the path against a topology: every Out interface must
// attach to a link whose far side is the next hop's AS and In interface.
func (p *Path) Check(topo *topology.Graph) error {
	for i := 0; i+1 < len(p.Hops); i++ {
		cur, next := p.Hops[i], p.Hops[i+1]
		l := topo.LinkByIf(cur.IA, cur.Out)
		if l == nil {
			return fmt.Errorf("combinator: %s has no interface %s", cur.IA, cur.Out)
		}
		if l.Other(cur.IA) != next.IA || l.RemoteIf(cur.IA) != next.In {
			return fmt.Errorf("combinator: hop %d: link %s does not lead to %s#%s", i, l, next.IA, next.In)
		}
	}
	return nil
}

// ContainsLoop reports whether an AS appears twice.
func (p *Path) ContainsLoop() bool {
	seen := map[addr.IA]bool{}
	for _, h := range p.Hops {
		if seen[h.IA] {
			return true
		}
		seen[h.IA] = true
	}
	return false
}

// Errors returned by combination.
var (
	ErrNotTerminated = errors.New("combinator: segment not terminated")
	ErrNoJunction    = errors.New("combinator: segments do not share a junction")
	ErrEmptySegment  = errors.New("combinator: empty segment")
)

// terminated checks the segment ends with a leaf entry (egress 0).
func terminated(s *seg.PCB) error {
	if s.NumHops() == 0 {
		return ErrEmptySegment
	}
	if s.ASEntries[s.NumHops()-1].Hop.ConsEgress != 0 {
		return ErrNotTerminated
	}
	return nil
}

// segMTU returns the smallest AS-entry MTU of the segment (0 if none set).
func segMTU(s *seg.PCB) uint16 {
	var m uint16
	for i := range s.ASEntries {
		v := s.ASEntries[i].MTU
		if v == 0 {
			continue
		}
		if m == 0 || v < m {
			m = v
		}
	}
	return m
}

// minMTU combines segment MTUs, ignoring zeros.
func minMTU(vals ...uint16) uint16 {
	var m uint16
	for _, v := range vals {
		if v == 0 {
			continue
		}
		if m == 0 || v < m {
			m = v
		}
	}
	return m
}

// forward converts a terminated segment into hops in beaconing direction
// (origin first): the beacon entered each AS via ConsIngress and left via
// ConsEgress, which is exactly the data-plane direction core -> leaf.
func forward(s *seg.PCB) []Hop {
	hops := make([]Hop, s.NumHops())
	for i := range s.ASEntries {
		e := &s.ASEntries[i]
		hops[i] = Hop{IA: e.Local, In: e.Hop.ConsIngress, Out: e.Hop.ConsEgress}
	}
	return hops
}

// backward converts a terminated segment into hops against beaconing
// direction (leaf first), the direction an up-segment is used.
func backward(s *seg.PCB) []Hop {
	f := forward(s)
	out := make([]Hop, len(f))
	for i, h := range f {
		out[len(f)-1-i] = Hop{IA: h.IA, In: h.Out, Out: h.In}
	}
	return out
}

// joinAdjacent concatenates hop lists where the junction AS appears as
// the last hop of a and the first hop of b; the two half-hops merge.
func joinAdjacent(a, b []Hop) ([]Hop, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, ErrEmptySegment
	}
	last, first := a[len(a)-1], b[0]
	if last.IA != first.IA {
		return nil, fmt.Errorf("%w: %s vs %s", ErrNoJunction, last.IA, first.IA)
	}
	merged := Hop{IA: last.IA, In: last.In, Out: first.Out}
	out := make([]Hop, 0, len(a)+len(b)-1)
	out = append(out, a[:len(a)-1]...)
	out = append(out, merged)
	out = append(out, b[1:]...)
	return out, nil
}

// Combine builds the full three-segment path src -> core1 -> core2 -> dst
// from a terminated up-segment (origin core1, leaf src), core-segment
// (origin core2, leaf core1), and down-segment (origin core2, leaf dst).
// Either up or down may be nil when the corresponding endpoint is itself
// a core AS; core may be nil when both ISD cores coincide.
func Combine(up, core, down *seg.PCB) (*Path, error) {
	var parts [][]Hop
	if up != nil {
		if err := terminated(up); err != nil {
			return nil, fmt.Errorf("up: %w", err)
		}
		parts = append(parts, backward(up))
	}
	if core != nil {
		if err := terminated(core); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		parts = append(parts, backward(core))
	}
	if down != nil {
		if err := terminated(down); err != nil {
			return nil, fmt.Errorf("down: %w", err)
		}
		parts = append(parts, forward(down))
	}
	if len(parts) == 0 {
		return nil, ErrEmptySegment
	}
	hops := parts[0]
	for _, p := range parts[1:] {
		var err error
		hops, err = joinAdjacent(hops, p)
		if err != nil {
			return nil, err
		}
	}
	var mtus []uint16
	for _, s := range []*seg.PCB{up, core, down} {
		if s != nil {
			mtus = append(mtus, segMTU(s))
		}
	}
	return &Path{Hops: hops, MTU: minMTU(mtus...)}, nil
}

// Shortcut builds a path that crosses over at a non-core AS common to the
// up- and down-segment, avoiding the core (paper §2.2). The crossover is
// the common AS closest to the endpoints (deepest in both segments).
func Shortcut(up, down *seg.PCB) (*Path, error) {
	if err := terminated(up); err != nil {
		return nil, fmt.Errorf("up: %w", err)
	}
	if err := terminated(down); err != nil {
		return nil, fmt.Errorf("down: %w", err)
	}
	upHops := backward(up)    // src ... core1
	downHops := forward(down) // core2 ... dst
	// Find the crossover: the earliest hop in upHops (deepest AS) that
	// also appears in downHops.
	downIdx := map[addr.IA]int{}
	for i, h := range downHops {
		if _, ok := downIdx[h.IA]; !ok {
			downIdx[h.IA] = i
		}
	}
	for i, h := range upHops {
		j, ok := downIdx[h.IA]
		if !ok {
			continue
		}
		cross := Hop{IA: h.IA, In: h.In, Out: downHops[j].Out}
		hops := make([]Hop, 0, i+len(downHops)-j)
		hops = append(hops, upHops[:i]...)
		hops = append(hops, cross)
		hops = append(hops, downHops[j+1:]...)
		return &Path{Hops: hops, MTU: minMTU(segMTU(up), segMTU(down))}, nil
	}
	return nil, ErrNoJunction
}

// PeeringShortcut joins the up- and down-segment over a peering link that
// both advertise: an AS U on the up-segment carries a peer entry to an AS
// D on the down-segment, and D carries the mirrored entry (valley-free
// peering requires the same link in both segments, paper §2.2).
func PeeringShortcut(up, down *seg.PCB) (*Path, error) {
	if err := terminated(up); err != nil {
		return nil, fmt.Errorf("up: %w", err)
	}
	if err := terminated(down); err != nil {
		return nil, fmt.Errorf("down: %w", err)
	}
	upHops := backward(up)
	downHops := forward(down)

	// Index down-segment peer entries: AS -> peer -> (localIf, peerIf).
	type peerIf struct{ local, remote addr.IfID }
	downPeers := map[addr.IA]map[addr.IA]peerIf{}
	downPos := map[addr.IA]int{}
	for i, h := range downHops {
		downPos[h.IA] = i
	}
	for i := range down.ASEntries {
		e := &down.ASEntries[i]
		m := map[addr.IA]peerIf{}
		for _, pe := range e.Peers {
			m[pe.Peer] = peerIf{local: pe.LocalIf, remote: pe.PeerIf}
		}
		downPeers[e.Local] = m
	}

	// Walk the up-segment from the endpoint: the first matching peering
	// link gives the shortest detour.
	for i := range upHops {
		u := upHops[i].IA
		var uEntry *seg.ASEntry
		for j := range up.ASEntries {
			if up.ASEntries[j].Local == u {
				uEntry = &up.ASEntries[j]
				break
			}
		}
		if uEntry == nil {
			continue
		}
		for _, pe := range uEntry.Peers {
			dm, onDown := downPeers[pe.Peer]
			if !onDown {
				continue
			}
			mirror, ok := dm[u]
			if !ok {
				continue
			}
			// The same physical link: U's local interface must be the
			// far side of D's entry and vice versa.
			if mirror.remote != pe.LocalIf || mirror.local != pe.PeerIf {
				continue
			}
			j := downPos[pe.Peer]
			crossU := Hop{IA: u, In: upHops[i].In, Out: pe.LocalIf}
			crossD := Hop{IA: pe.Peer, In: pe.PeerIf, Out: downHops[j].Out}
			hops := make([]Hop, 0, i+2+len(downHops)-j)
			hops = append(hops, upHops[:i]...)
			hops = append(hops, crossU, crossD)
			hops = append(hops, downHops[j+1:]...)
			return &Path{Hops: hops, MTU: minMTU(segMTU(up), segMTU(down))}, nil
		}
	}
	return nil, ErrNoJunction
}

// AllPaths combines every compatible (up, core, down) triple plus all
// shortcuts into the candidate path set an endpoint can choose from,
// dropping looping paths.
func AllPaths(ups, cores, downs []*seg.PCB) []*Path {
	var out []*Path
	add := func(p *Path, err error) {
		if err == nil && !p.ContainsLoop() {
			out = append(out, p)
		}
	}
	for _, up := range ups {
		for _, down := range downs {
			add(Shortcut(up, down))
			add(PeeringShortcut(up, down))
			for _, c := range cores {
				add(Combine(up, c, down))
			}
			// Same-core junction without a core segment.
			add(Combine(up, nil, down))
		}
	}
	return out
}
