package traffic

import (
	"bytes"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/scion"
)

var (
	a1 = addr.MustIA(1, 0xff00_0000_0101)
	a4 = addr.MustIA(1, 0xff00_0000_0104)
	a6 = addr.MustIA(1, 0xff00_0000_0106)
	b3 = addr.MustIA(2, 0xff00_0000_0203)
)

func demoEngine(t *testing.T, sched string) (*scion.Network, *Engine) {
	t.Helper()
	n, err := scion.NewNetwork(topology.Demo(), scion.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	factory, err := NewScheduler(sched)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Clock:     n.Clock(),
		Net:       n.Fabric().Net,
		Fabric:    n.Fabric(),
		Provider:  n.Paths,
		Links:     NewLinkModel(UniformCapacity(1e8)),
		Scheduler: func() Scheduler { f := factory(); return f },
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, eng
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestSingleFlowCompletes(t *testing.T) {
	_, eng := demoEngine(t, "weighted")
	f := eng.Add(FlowSpec{ID: 1, Src: a6, Dst: a4, Start: time.Millisecond, Size: 4 << 20})
	s := eng.Run()
	if !f.Done() {
		t.Fatalf("flow not done: sent=%d failed=%v", f.Sent(), f.Failed())
	}
	if f.Sent() != 4<<20 {
		t.Errorf("sent = %d, want %d", f.Sent(), 4<<20)
	}
	if f.FCT() <= 0 {
		t.Errorf("fct = %v", f.FCT())
	}
	if g := f.Goodput(sim.Time(s.Elapsed)); g <= 0 {
		t.Errorf("goodput = %v", g)
	}
	if s.Completed != 1 || s.Failed != 0 || s.DeliveredBytes != 4<<20 {
		t.Errorf("summary = %+v", s)
	}
	if len(s.LinkUtil) == 0 {
		t.Error("no link utilization recorded")
	}
}

func TestMultipathBeatsSinglePath(t *testing.T) {
	// The same transfer over the same fabric: striping across paths must
	// not complete later than pinning to the single best path.
	fct := func(sched string) time.Duration {
		_, eng := demoEngine(t, sched)
		f := eng.Add(FlowSpec{ID: 1, Src: b3, Dst: a6, Start: 0, Size: 16 << 20})
		eng.Run()
		if !f.Done() {
			t.Fatalf("%s: flow not done", sched)
		}
		return f.FCT()
	}
	single := fct("single-best")
	multi := fct("weighted")
	if multi > single {
		t.Errorf("weighted fct %v > single-best fct %v", multi, single)
	}
}

func TestOpenEndedFlowRunsUntilDeadline(t *testing.T) {
	_, eng := demoEngine(t, "round-robin")
	f := eng.Add(FlowSpec{ID: 7, Src: a6, Dst: a4, Start: 0, Size: 0})
	s := eng.RunUntil(200 * time.Millisecond)
	if f.Done() || f.Failed() {
		t.Fatal("open-ended flow should still be active")
	}
	if f.Sent() == 0 || s.Active != 1 {
		t.Errorf("sent=%d active=%d", f.Sent(), s.Active)
	}
}

func TestDeterministicSummaries(t *testing.T) {
	run := func() []byte {
		n, err := scion.NewNetwork(topology.Demo(), scion.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(Config{
			Clock:    n.Clock(),
			Net:      n.Fabric().Net,
			Fabric:   n.Fabric(),
			Provider: n.Paths,
			Links:    NewLinkModel(DefaultCapacity()),
		})
		if err != nil {
			t.Fatal(err)
		}
		specs := Generate(WorkloadParams{
			Flows:       200,
			Pairs:       [][2]addr.IA{{a6, a4}, {b3, a6}, {a4, b3}},
			ArrivalRate: 2000,
			MeanSize:    128 << 10,
			ZipfS:       1.2,
			Seed:        42,
		})
		for _, spec := range specs {
			eng.Add(spec)
		}
		var buf bytes.Buffer
		eng.Run().Print(&buf)
		return buf.Bytes()
	}
	first := run()
	if !bytes.Contains(first, []byte("flows: 200 total, 200 completed")) {
		t.Fatalf("unexpected summary:\n%s", first)
	}
	if second := run(); !bytes.Equal(first, second) {
		t.Errorf("same seed produced different summaries:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestFailoverWithinOneRTT is the revocation contract: a flow in progress
// abandons a revoked path as soon as the SCMP message arrives (within one
// RTT of the failure) and completes on the surviving paths.
func TestFailoverWithinOneRTT(t *testing.T) {
	n, eng := demoEngine(t, "weighted")
	f := eng.Add(FlowSpec{ID: 3, Src: b3, Dst: a6, Start: 0, Size: 32 << 20})

	// Discover the flow's first path and pick its second link so the SCMP
	// has to travel one hop back (one link RTT = 2 * 5ms one-way delay).
	fps, err := n.Paths(b3, a6)
	if err != nil || len(fps) == 0 {
		t.Fatal(err)
	}
	refs, err := fps[0].LinkRefs(n.Topo)
	if err != nil || len(refs) < 2 {
		t.Fatalf("short path: %v (%d links)", err, len(refs))
	}
	target := refs[1].Link

	const failAt = 20 * time.Millisecond
	var revokedAt sim.Time
	var bytesOnFailedAtRev float64
	onFailed := func() float64 {
		sum := 0.0
		for _, u := range eng.Links().Utilizations(time.Second) {
			if u.ID == target.ID {
				sum += u.Bytes
			}
		}
		return sum
	}
	eng.OnRevocation = func(_ *Flow, link topology.LinkID) {
		if link == target.ID && revokedAt == 0 {
			revokedAt = n.Clock().Now()
			bytesOnFailedAtRev = onFailed()
		}
	}
	n.Clock().Schedule(failAt, func() {
		// Control-plane revocation rides along (paper §4.1: path servers
		// learn of the failure too), so a re-query returns healthy paths.
		links := n.Topo.LinksBetween(target.A, target.B)
		for i, l := range links {
			if l.ID == target.ID {
				if _, err := n.FailLink(target.A, target.B, i); err != nil {
					t.Errorf("FailLink: %v", err)
				}
				return
			}
		}
		t.Error("target link not found")
	})

	eng.Run()

	if !f.Done() {
		t.Fatalf("flow did not complete after failover: sent=%d failed=%v", f.Sent(), f.Failed())
	}
	if eng.Revocations == 0 || f.Lost() == 0 {
		t.Fatalf("no revocation observed: revocations=%d lost=%d", eng.Revocations, f.Lost())
	}
	if revokedAt == 0 {
		t.Fatal("OnRevocation never fired for the failed link")
	}
	// One link RTT: head packet reaches the failure point one hop after
	// a6 (5ms) and the SCMP returns over the same hop (5ms).
	rtt := 2 * n.Fabric().Net.LinkDelay(target.ID)
	if got := time.Duration(revokedAt) - failAt; got > rtt+time.Millisecond {
		t.Errorf("revocation arrived %v after failure, want <= one RTT (%v)", got, rtt)
	}
	// Abandonment: not a single byte was admitted onto the revoked link
	// after the SCMP arrived.
	if final := onFailed(); final != bytesOnFailedAtRev {
		t.Errorf("revoked link kept carrying traffic: %v -> %v bytes", bytesOnFailedAtRev, final)
	}
	if f.PathSwitches() == 0 {
		t.Error("no path switch recorded")
	}
}

func TestAllPathsRevokedTriggersRequery(t *testing.T) {
	n, eng := demoEngine(t, "single-best")
	// a6 is dual-homed; fail both uplinks' continuation is overkill —
	// instead fail every initial link of the current path set so the flow
	// must re-query (control plane included, so fresh paths exist if the
	// topology still connects the pair).
	f := eng.Add(FlowSpec{ID: 9, Src: b3, Dst: a1, Start: 0, Size: 8 << 20})
	n.Clock().Schedule(10*time.Millisecond, func() {
		fps, err := n.Paths(b3, a1)
		if err != nil {
			t.Errorf("paths: %v", err)
			return
		}
		seen := map[topology.LinkID]bool{}
		for _, fp := range fps {
			refs, err := fp.LinkRefs(n.Topo)
			if err != nil || len(refs) == 0 {
				continue
			}
			l := refs[0].Link
			if seen[l.ID] {
				continue
			}
			seen[l.ID] = true
			links := n.Topo.LinksBetween(l.A, l.B)
			for i, cand := range links {
				if cand.ID == l.ID {
					if _, err := n.FailLink(l.A, l.B, i); err != nil {
						t.Errorf("FailLink: %v", err)
					}
				}
			}
		}
	})
	eng.Run()
	if !f.Done() && !f.Failed() {
		t.Fatal("flow neither done nor failed")
	}
	if f.Done() && f.Requeries() < 1 {
		t.Errorf("requeries = %d, want >= 1 (failover re-lookup)", f.Requeries())
	}
}
