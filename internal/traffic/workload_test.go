package traffic

import (
	"testing"

	"scionmpr/internal/addr"
)

func testPairs() [][2]addr.IA {
	var out [][2]addr.IA
	for i := 0; i < 8; i++ {
		out = append(out, [2]addr.IA{
			addr.MustIA(1, addr.AS(100+i)),
			addr.MustIA(1, addr.AS(200+i)),
		})
	}
	return out
}

func TestGenerateDeterministic(t *testing.T) {
	p := WorkloadParams{
		Flows:       500,
		Pairs:       testPairs(),
		ArrivalRate: 1000,
		MeanSize:    256 << 10,
		ZipfS:       1.3,
		Seed:        7,
	}
	a := Generate(p)
	b := Generate(p)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	p.Seed = 8
	c := Generate(p)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateShape(t *testing.T) {
	p := WorkloadParams{
		Flows:       2000,
		Pairs:       testPairs(),
		ArrivalRate: 1000,
		MeanSize:    256 << 10,
		Seed:        1,
	}
	specs := Generate(p)
	var totalSize float64
	maxSize := p.MeanSize * 100 // default MaxSizeFactor
	for i, s := range specs {
		if s.ID != i {
			t.Fatalf("spec %d has ID %d", i, s.ID)
		}
		if i > 0 && s.Start < specs[i-1].Start {
			t.Fatal("arrivals not monotonic")
		}
		if s.Size <= 0 || float64(s.Size) > maxSize {
			t.Fatalf("size %d outside (0, %v]", s.Size, maxSize)
		}
		totalSize += float64(s.Size)
	}
	// Bounded Pareto: the sample mean stays within a factor 2 of MeanSize.
	mean := totalSize / float64(len(specs))
	if mean < p.MeanSize/2 || mean > p.MeanSize*2 {
		t.Errorf("sample mean %v too far from %v", mean, p.MeanSize)
	}
	// Arrival spacing: 2000 flows at 1000/s should take roughly 2 seconds.
	last := specs[len(specs)-1].Start.Seconds()
	if last < 1 || last > 4 {
		t.Errorf("last arrival at %vs, want ~2s", last)
	}
	// Heavy tail: the largest flow dwarfs the median.
	var largest, smallest int64 = 0, 1 << 62
	for _, s := range specs {
		if s.Size > largest {
			largest = s.Size
		}
		if s.Size < smallest {
			smallest = s.Size
		}
	}
	if largest < 10*smallest {
		t.Errorf("no heavy tail: min=%d max=%d", smallest, largest)
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if Generate(WorkloadParams{Flows: 0, Pairs: testPairs()}) != nil {
		t.Error("zero flows should yield nil")
	}
	if Generate(WorkloadParams{Flows: 5}) != nil {
		t.Error("no pairs should yield nil")
	}
	specs := Generate(WorkloadParams{Flows: 5, Pairs: testPairs()[:1], Seed: 3})
	if len(specs) != 5 {
		t.Fatalf("defaults broken: %d specs", len(specs))
	}
	for _, s := range specs {
		if s.Src != testPairs()[0][0] {
			t.Error("single pair not used")
		}
	}
}
