package traffic

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
)

func testPairs() [][2]addr.IA {
	var out [][2]addr.IA
	for i := 0; i < 8; i++ {
		out = append(out, [2]addr.IA{
			addr.MustIA(1, addr.AS(100+i)),
			addr.MustIA(1, addr.AS(200+i)),
		})
	}
	return out
}

func TestGenerateDeterministic(t *testing.T) {
	p := WorkloadParams{
		Flows:       500,
		Pairs:       testPairs(),
		ArrivalRate: 1000,
		MeanSize:    256 << 10,
		ZipfS:       1.3,
		Seed:        7,
	}
	a := Generate(p)
	b := Generate(p)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	p.Seed = 8
	c := Generate(p)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateShape(t *testing.T) {
	p := WorkloadParams{
		Flows:       2000,
		Pairs:       testPairs(),
		ArrivalRate: 1000,
		MeanSize:    256 << 10,
		Seed:        1,
	}
	specs := Generate(p)
	var totalSize float64
	maxSize := p.MeanSize * 100 // default MaxSizeFactor
	for i, s := range specs {
		if s.ID != i {
			t.Fatalf("spec %d has ID %d", i, s.ID)
		}
		if i > 0 && s.Start < specs[i-1].Start {
			t.Fatal("arrivals not monotonic")
		}
		if s.Size <= 0 || float64(s.Size) > maxSize {
			t.Fatalf("size %d outside (0, %v]", s.Size, maxSize)
		}
		totalSize += float64(s.Size)
	}
	// Bounded Pareto: the sample mean stays within a factor 2 of MeanSize.
	mean := totalSize / float64(len(specs))
	if mean < p.MeanSize/2 || mean > p.MeanSize*2 {
		t.Errorf("sample mean %v too far from %v", mean, p.MeanSize)
	}
	// Arrival spacing: 2000 flows at 1000/s should take roughly 2 seconds.
	last := specs[len(specs)-1].Start.Seconds()
	if last < 1 || last > 4 {
		t.Errorf("last arrival at %vs, want ~2s", last)
	}
	// Heavy tail: the largest flow dwarfs the median.
	var largest, smallest int64 = 0, 1 << 62
	for _, s := range specs {
		if s.Size > largest {
			largest = s.Size
		}
		if s.Size < smallest {
			smallest = s.Size
		}
	}
	if largest < 10*smallest {
		t.Errorf("no heavy tail: min=%d max=%d", smallest, largest)
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if Generate(WorkloadParams{Flows: 0, Pairs: testPairs()}) != nil {
		t.Error("zero flows should yield nil")
	}
	if Generate(WorkloadParams{Flows: 5}) != nil {
		t.Error("no pairs should yield nil")
	}
	specs := Generate(WorkloadParams{Flows: 5, Pairs: testPairs()[:1], Seed: 3})
	if len(specs) != 5 {
		t.Fatalf("defaults broken: %d specs", len(specs))
	}
	for _, s := range specs {
		if s.Src != testPairs()[0][0] {
			t.Error("single pair not used")
		}
	}
}

func TestThinkTimes(t *testing.T) {
	tt := NewThinkTimes(100*time.Millisecond, 10*time.Millisecond, 7)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := tt.Next()
		if d < 10*time.Millisecond {
			t.Fatalf("think time %v below floor", d)
		}
		sum += d
	}
	mean := sum / n
	// Exponential with mean 100ms and a 10ms floor: the sample mean must
	// land near 100ms (the floor adds a few percent).
	if mean < 90*time.Millisecond || mean > 125*time.Millisecond {
		t.Errorf("sample mean = %v, want ~100ms", mean)
	}
	// Same seed, same stream.
	a, b := NewThinkTimes(time.Second, 0, 42), NewThinkTimes(time.Second, 0, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("equal seeds must yield identical think-time streams")
		}
	}
	// Defaults: non-positive mean falls back to 1s, min clamped to mean.
	d := NewThinkTimes(0, 5*time.Second, 1)
	if d.mean != float64(time.Second) || d.min != d.mean {
		t.Errorf("defaults: mean=%v min=%v", d.mean, d.min)
	}
}
