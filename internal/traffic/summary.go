package traffic

import (
	"fmt"
	"io"
	"time"

	"scionmpr/internal/metrics"
)

// Summary is the deterministic run report: flow-population counters,
// delivered and lost bytes, and the per-flow observable distributions the
// paper's data-plane figures are built from.
type Summary struct {
	Flows, Completed, Failed, Active int

	DeliveredBytes int64
	LostBytes      int64

	PathSwitches int
	Requeries    uint64
	Revocations  uint64

	// Elapsed is the virtual time at summarization.
	Elapsed time.Duration

	// FCTSeconds holds completion times of finished flows.
	FCTSeconds []float64
	// GoodputBps holds per-flow goodput of finished flows.
	GoodputBps []float64
	// ActiveGoodputBps holds goodput of flows still running.
	ActiveGoodputBps []float64

	// LinkUtil is the per-link-direction utilization in deterministic order.
	LinkUtil []LinkUtil
}

// Summarize captures the engine state at the current virtual time.
func (e *Engine) Summarize() *Summary {
	now := e.cfg.Clock.Now()
	s := &Summary{
		Flows:       len(e.flows),
		Requeries:   e.Requeries,
		Revocations: e.Revocations,
		Elapsed:     time.Duration(now),
		LinkUtil:    e.cfg.Links.Utilizations(time.Duration(now)),
	}
	for _, f := range e.flows {
		s.DeliveredBytes += f.sent
		s.LostBytes += f.lost
		s.PathSwitches += f.switches
		switch f.state {
		case flowDone:
			s.Completed++
			s.FCTSeconds = append(s.FCTSeconds, f.FCT().Seconds())
			s.GoodputBps = append(s.GoodputBps, f.Goodput(now))
		case flowFailed:
			s.Failed++
		case flowActive:
			s.Active++
			s.ActiveGoodputBps = append(s.ActiveGoodputBps, f.Goodput(now))
		}
	}
	return s
}

// AggregateGoodput returns total delivered bytes per second of elapsed
// virtual time.
func (s *Summary) AggregateGoodput() float64 {
	secs := s.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(s.DeliveredBytes) / secs
}

// Print renders the summary deterministically (fixed iteration orders,
// no timestamps) so equal seeds produce byte-identical reports.
func (s *Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "flows: %d total, %d completed, %d failed, %d active\n",
		s.Flows, s.Completed, s.Failed, s.Active)
	fmt.Fprintf(w, "delivered: %s, lost: %s, aggregate goodput: %s\n",
		metrics.FmtBytes(float64(s.DeliveredBytes)), metrics.FmtBytes(float64(s.LostBytes)),
		metrics.FmtRate(s.AggregateGoodput()))
	fmt.Fprintf(w, "path switches: %d, requeries: %d, revocations: %d\n",
		s.PathSwitches, s.Requeries, s.Revocations)
	fmt.Fprintf(w, "elapsed: %s\n", s.Elapsed)
	var series []metrics.Series
	if len(s.FCTSeconds) > 0 {
		series = append(series, metrics.Series{Name: "fct-seconds", CDF: metrics.NewCDF(s.FCTSeconds)})
	}
	if len(s.GoodputBps) > 0 {
		series = append(series, metrics.Series{Name: "goodput-Bps", CDF: metrics.NewCDF(s.GoodputBps)})
	}
	if len(s.ActiveGoodputBps) > 0 {
		series = append(series, metrics.Series{Name: "active-goodput-Bps", CDF: metrics.NewCDF(s.ActiveGoodputBps)})
	}
	if len(series) > 0 {
		metrics.FprintCDFs(w, "flow metrics", series)
	}
	if n := len(s.LinkUtil); n > 0 {
		util := make([]float64, 0, n)
		hot := 0.0
		for _, u := range s.LinkUtil {
			util = append(util, u.Util)
			if u.Util > hot {
				hot = u.Util
			}
		}
		c := metrics.NewCDF(util)
		fmt.Fprintf(w, "link directions with traffic: %d, median util: %.4f, p95 util: %.4f, max util: %.4f\n",
			n, c.Median(), c.Quantile(0.95), hot)
	}
}
