package traffic

import "scionmpr/internal/strategy"

// The scheduler layer is now the path-selection policy laboratory in
// internal/strategy; these aliases keep the traffic engine's historical
// API (PathInfo/Scheduler/NewScheduler and the four original scheduler
// types) stable while the implementations live behind the Policy
// interface. See package strategy for the policy catalog and the text
// configuration format.

// PathInfo is the scheduler-visible state of one candidate path of a
// flow. The engine rebuilds it before every decision.
type PathInfo = strategy.PathView

// Scheduler decides, chunk by chunk, which of a flow's candidate paths
// carries the next chunk. Pick returns an index into paths, or -1 to wait
// until a busy path becomes idle. Implementations must be deterministic
// and must never pick a revoked path.
type Scheduler = strategy.Policy

// The original four schedulers, now policies in internal/strategy.
type (
	SingleBest         = strategy.SingleBest
	RoundRobin         = strategy.RoundRobin
	WeightedBottleneck = strategy.WeightedBottleneck
	LatencyAware       = strategy.LatencyAware
)

// NewScheduler resolves a strategy spec to a per-flow scheduler factory.
// Known names: single-best, round-robin, weighted, latency, disjoint,
// hybrid; see strategy.Parse for the parameter syntax.
func NewScheduler(name string) (func() Scheduler, error) {
	return strategy.Parse(name)
}

// SchedulerNames lists the registered policy names in canonical order.
func SchedulerNames() []string { return strategy.Names() }
