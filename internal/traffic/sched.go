package traffic

import (
	"fmt"
	"time"
)

// PathInfo is the scheduler-visible state of one candidate path of a
// flow. The engine rebuilds it before every decision.
type PathInfo struct {
	// Hops is the AS-level path length.
	Hops int
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Bottleneck is the smallest link capacity along the path (bytes/s).
	Bottleneck float64
	// Sent is how many bytes the flow has sent on this path so far.
	Sent int64
	// Busy reports that the path is still serializing a previous chunk.
	Busy bool
	// Revoked paths must never be picked.
	Revoked bool
}

func (p PathInfo) usable() bool { return !p.Revoked }
func (p PathInfo) idle() bool   { return !p.Revoked && !p.Busy }

// Scheduler decides, chunk by chunk, which of a flow's candidate paths
// carries the next chunk — the multipath scheduling strategies surveyed in
// the axiomatic path-selection literature. Pick returns an index into
// paths, or -1 to wait until a busy path becomes idle. Implementations
// must be deterministic and must never pick a revoked path.
type Scheduler interface {
	Name() string
	Pick(paths []PathInfo) int
}

// NewScheduler resolves a strategy name to a per-flow scheduler factory.
// Known names: single-best, round-robin, weighted, latency.
func NewScheduler(name string) (func() Scheduler, error) {
	switch name {
	case "single-best":
		return func() Scheduler { return &SingleBest{} }, nil
	case "round-robin":
		return func() Scheduler { return &RoundRobin{} }, nil
	case "weighted":
		return func() Scheduler { return &WeightedBottleneck{} }, nil
	case "latency":
		return func() Scheduler { return &LatencyAware{} }, nil
	}
	return nil, fmt.Errorf("traffic: unknown scheduler %q", name)
}

// SingleBest always uses the single lowest-hop-count usable path — the
// strategy of a classic single-path transport that only switches paths on
// revocation. It waits rather than spill to alternatives.
type SingleBest struct{}

// Name implements Scheduler.
func (*SingleBest) Name() string { return "single-best" }

// Pick implements Scheduler.
func (*SingleBest) Pick(paths []PathInfo) int {
	best := -1
	for i, p := range paths {
		if !p.usable() {
			continue
		}
		if best < 0 || p.Hops < paths[best].Hops {
			best = i
		}
	}
	if best < 0 || paths[best].Busy {
		return -1
	}
	return best
}

// RoundRobin rotates chunks across all idle usable paths, the simplest
// capacity-aggregating multipath scheduler.
type RoundRobin struct {
	last int
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (s *RoundRobin) Pick(paths []PathInfo) int {
	n := len(paths)
	for off := 1; off <= n; off++ {
		i := (s.last + off) % n
		if paths[i].idle() {
			s.last = i
			return i
		}
	}
	return -1
}

// WeightedBottleneck is smooth weighted round-robin with each path
// weighted by its bottleneck capacity: paths carry chunks in proportion to
// the capacity they can contribute, which maximizes aggregate goodput over
// heterogeneous path sets.
type WeightedBottleneck struct {
	credit []float64
}

// Name implements Scheduler.
func (*WeightedBottleneck) Name() string { return "weighted" }

// Pick implements Scheduler.
func (s *WeightedBottleneck) Pick(paths []PathInfo) int {
	anyIdle := false
	for _, p := range paths {
		if p.idle() {
			anyIdle = true
			break
		}
	}
	if !anyIdle {
		return -1
	}
	for len(s.credit) < len(paths) {
		s.credit = append(s.credit, 0)
	}
	total := 0.0
	for i, p := range paths {
		if !p.usable() {
			s.credit[i] = 0
			continue
		}
		s.credit[i] += p.Bottleneck
		total += p.Bottleneck
	}
	best := -1
	for i, p := range paths {
		if !p.idle() {
			continue
		}
		if best < 0 || s.credit[i] > s.credit[best] {
			best = i
		}
	}
	s.credit[best] -= total
	return best
}

// LatencyAware prefers the lowest-latency usable path and spills to other
// paths only while their propagation delay stays within Stretch of the
// best — the latency-sensitive strategy of interactive applications.
type LatencyAware struct {
	// Stretch bounds how much slower than the best path an alternative
	// may be (default 1.5).
	Stretch float64
}

// Name implements Scheduler.
func (*LatencyAware) Name() string { return "latency" }

// Pick implements Scheduler.
func (s *LatencyAware) Pick(paths []PathInfo) int {
	stretch := s.Stretch
	if stretch <= 1 {
		stretch = 1.5
	}
	minDelay := time.Duration(-1)
	for _, p := range paths {
		if p.usable() && (minDelay < 0 || p.Delay < minDelay) {
			minDelay = p.Delay
		}
	}
	if minDelay < 0 {
		return -1
	}
	limit := time.Duration(float64(minDelay) * stretch)
	best := -1
	for i, p := range paths {
		if !p.idle() || p.Delay > limit {
			continue
		}
		if best < 0 || p.Delay < paths[best].Delay {
			best = i
		}
	}
	return best
}
