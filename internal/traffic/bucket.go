package traffic

import (
	"math"
	"sort"
	"time"

	"scionmpr/internal/dataplane"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// CapacityProfile derives the capacity of one inter-domain link from its
// topology attributes, returning the sustained rate in bytes of virtual
// time per second. Profiles must be pure functions of the link so capacity
// assignment stays deterministic.
type CapacityProfile func(l *topology.Link) float64

// UniformCapacity assigns every link the same rate — the paper's Figure 6b
// capacity model, where aggregate capacity is counted in multiples of a
// single inter-AS link.
func UniformCapacity(bytesPerSec float64) CapacityProfile {
	return func(*topology.Link) float64 { return bytesPerSec }
}

// RelCapacity assigns rates by business relationship — core links are
// provisioned like tier-1 interconnects, provider links like transit
// ports, peer links like settlement-free public peering — with a
// deterministic ±25 % per-link jitter derived from the link ID, standing
// in for heterogeneous port speeds.
func RelCapacity(coreBps, providerBps, peerBps float64) CapacityProfile {
	return func(l *topology.Link) float64 {
		base := peerBps
		switch l.Rel {
		case topology.Core:
			base = coreBps
		case topology.ProviderOf:
			base = providerBps
		}
		// splitmix-style hash of the link ID to a factor in [0.75, 1.25).
		x := uint64(l.ID) * 0x9e3779b97f4a7c15
		x ^= x >> 31
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		return base * (0.75 + 0.5*float64(x>>11)/float64(1<<53))
	}
}

// DefaultCapacity is the relationship-based profile with 10 Gbps core,
// 2.5 Gbps provider and 1 Gbps peer links.
func DefaultCapacity() CapacityProfile {
	return RelCapacity(1.25e9, 3.125e8, 1.25e8)
}

// bucket is one token bucket: a direction of one inter-domain link.
type bucket struct {
	rate  float64 // bytes per second
	burst float64 // bucket depth in bytes
	// tokens is the currently available credit; last is the virtual time
	// of the most recent refill.
	tokens float64
	last   sim.Time
	// admitted accumulates all granted bytes, the utilization observable.
	admitted float64
}

// refill lazily adds rate*dt tokens up to the burst depth.
func (b *bucket) refill(now sim.Time) {
	if now > b.last {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*time.Duration(now-b.last).Seconds())
		b.last = now
	}
}

// eta returns the time until want tokens (clamped to the burst depth)
// will be available, assuming no competing consumers.
func (b *bucket) eta(want float64) time.Duration {
	want = math.Min(want, b.burst)
	if b.tokens >= want {
		return time.Microsecond
	}
	d := time.Duration((want - b.tokens) / b.rate * float64(time.Second))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

type bucketKey struct {
	id  topology.LinkID
	fwd bool
}

// LinkModel holds the per-link-direction token buckets that arbitrate
// capacity among concurrent flows. Buckets are created lazily from the
// capacity profile; all state is keyed by link ID and direction, so the
// model is independent of which paths traverse a link.
type LinkModel struct {
	// Profile assigns link rates (DefaultCapacity if nil).
	Profile CapacityProfile
	// BurstWindow sizes each bucket's depth as rate * BurstWindow
	// (default 50 ms).
	BurstWindow time.Duration

	buckets map[bucketKey]*bucket
	// epoch is the earliest virtual time any bucket was touched, the
	// utilization denominator's start.
	epoch    sim.Time
	hasEpoch bool
}

// NewLinkModel builds a link model with the given profile (nil for
// DefaultCapacity).
func NewLinkModel(p CapacityProfile) *LinkModel {
	if p == nil {
		p = DefaultCapacity()
	}
	return &LinkModel{Profile: p, BurstWindow: 50 * time.Millisecond, buckets: map[bucketKey]*bucket{}}
}

func (m *LinkModel) bucket(ref dataplane.LinkRef, now sim.Time) *bucket {
	k := bucketKey{id: ref.Link.ID, fwd: ref.Forward()}
	b := m.buckets[k]
	if b == nil {
		rate := m.Profile(ref.Link)
		if rate < 1 {
			rate = 1
		}
		w := m.BurstWindow
		if w <= 0 {
			w = 50 * time.Millisecond
		}
		b = &bucket{rate: rate, burst: rate * w.Seconds(), last: now}
		b.tokens = b.burst // start full
		m.buckets[k] = b
		if !m.hasEpoch || now < m.epoch {
			m.epoch, m.hasEpoch = now, true
		}
	}
	return b
}

// Rate returns the configured rate of one link direction.
func (m *LinkModel) Rate(ref dataplane.LinkRef) float64 {
	rate := m.Profile(ref.Link)
	if rate < 1 {
		rate = 1
	}
	return rate
}

// Bottleneck returns the smallest link rate along a path, the capacity a
// single flow can at most achieve on it.
func (m *LinkModel) Bottleneck(path []dataplane.LinkRef) float64 {
	min := math.Inf(1)
	for _, ref := range path {
		if r := m.Rate(ref); r < min {
			min = r
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Admit charges up to want bytes against every bucket along the path,
// granting the minimum the buckets allow (the bottleneck share). When
// nothing can be granted it returns the time to wait before retrying.
func (m *LinkModel) Admit(now sim.Time, path []dataplane.LinkRef, want int64) (granted int64, wait time.Duration) {
	return m.AdmitAtLeast(now, path, want, 0)
}

// AdmitAtLeast is Admit with a grant floor: instead of trickling out
// whatever credit remains — which under contention degrades into a storm
// of fragment-sized grants, each carrying a MAC-verified head packet —
// it grants nothing until at least floor bytes are available on every
// bucket, and advertises the wait until they will be. The floor is
// clamped to the path's shallowest bucket so it can always be met.
// A floor of zero or one is plain Admit.
func (m *LinkModel) AdmitAtLeast(now sim.Time, path []dataplane.LinkRef, want, floor int64) (granted int64, wait time.Duration) {
	if want <= 0 || len(path) == 0 {
		return 0, 0
	}
	g := float64(want)
	// need is the smallest acceptable grant: the floor, clamped so the
	// shallowest bucket on the path can still satisfy it.
	need := math.Min(float64(floor), float64(want))
	var bottleneck *bucket
	for _, ref := range path {
		b := m.bucket(ref, now)
		b.refill(now)
		if b.tokens < g {
			g = b.tokens
			bottleneck = b
		}
		if b.burst < need {
			need = b.burst
		}
	}
	g = math.Floor(g)
	if g < 1 || g < math.Floor(need) {
		// Wait until the floor (or, without one, the full want) fits.
		if need > 1 {
			return 0, bottleneck.eta(need)
		}
		return 0, bottleneck.eta(float64(want))
	}
	for _, ref := range path {
		b := m.bucket(ref, now)
		b.tokens -= g
		b.admitted += g
	}
	return int64(g), 0
}

// LinkUtil is the per-link-direction utilization observable.
type LinkUtil struct {
	ID      topology.LinkID
	Forward bool
	Rate    float64 // bytes/s
	Bytes   float64 // admitted bytes
	Util    float64 // admitted / (rate * elapsed)
}

// Utilizations reports every traffic-bearing link direction in
// deterministic (link ID, direction) order. elapsed is the observation
// window the utilization is normalized over.
func (m *LinkModel) Utilizations(elapsed time.Duration) []LinkUtil {
	keys := make([]bucketKey, 0, len(m.buckets))
	for k := range m.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].fwd && !keys[j].fwd
	})
	secs := elapsed.Seconds()
	out := make([]LinkUtil, 0, len(keys))
	for _, k := range keys {
		b := m.buckets[k]
		u := LinkUtil{ID: k.id, Forward: k.fwd, Rate: b.rate, Bytes: b.admitted}
		if secs > 0 {
			u.Util = b.admitted / (b.rate * secs)
		}
		out = append(out, u)
	}
	return out
}
