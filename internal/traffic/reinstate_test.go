package traffic

import (
	"fmt"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/scion"
)

// demoEngineTTL is demoEngine with fast revocation expiry on both the
// path servers and the traffic engine, so reinstatement fits in a
// millisecond-scale test.
func demoEngineTTL(t *testing.T, ttl time.Duration) (*scion.Network, *Engine) {
	t.Helper()
	opts := scion.DefaultOptions()
	opts.RevocationTTL = ttl
	n, err := scion.NewNetwork(topology.Demo(), opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Clock:         n.Clock(),
		Net:           n.Fabric().Net,
		Fabric:        n.Fabric(),
		Provider:      n.Paths,
		Links:         NewLinkModel(UniformCapacity(1e8)),
		RevocationTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, eng
}

// failByID fails (or restores) the identified link through the network's
// control-plane-aware entry points.
func toggleLink(t *testing.T, n *scion.Network, target *topology.Link, up bool) {
	t.Helper()
	links := n.Topo.LinksBetween(target.A, target.B)
	for i, l := range links {
		if l.ID != target.ID {
			continue
		}
		var err error
		if up {
			_, err = n.RestoreLink(target.A, target.B, i)
		} else {
			_, err = n.FailLink(target.A, target.B, i)
		}
		if err != nil {
			t.Errorf("toggle link %d: %v", target.ID, err)
		}
		return
	}
	t.Errorf("link %d not found between %s and %s", target.ID, target.A, target.B)
}

// TestRevocationExpiryReadoptsRestoredPath is the end-to-end recovery
// semantic of a transient failure: SCMP revokes a path mid-flow, the
// link heals, the soft revocation state expires on both the path servers
// and the source, and the flow's next re-probe readopts the restored
// path without ever having stopped.
func TestRevocationExpiryReadoptsRestoredPath(t *testing.T) {
	const ttl = 120 * time.Millisecond
	n, eng := demoEngineTTL(t, ttl)
	f := eng.Add(FlowSpec{ID: 1, Src: b3, Dst: a6, Start: 0, Size: 0})

	fps, err := n.Paths(b3, a6)
	if err != nil || len(fps) < 2 {
		t.Fatalf("need a multipath pair: %v (%d paths)", err, len(fps))
	}
	refs, err := fps[0].LinkRefs(n.Topo)
	if err != nil || len(refs) < 2 {
		t.Fatalf("short path: %v", err)
	}
	target := refs[1].Link

	n.Clock().Schedule(20*time.Millisecond, func() { toggleLink(t, n, target, false) })
	n.Clock().Schedule(60*time.Millisecond, func() { toggleLink(t, n, target, true) })
	eng.RunUntil(500 * time.Millisecond)

	if f.Reprobes() == 0 {
		t.Fatalf("no re-probe after revocation expiry (engine reprobes=%d)", eng.Reprobes)
	}
	if f.Disconnected() || !f.Active() {
		t.Fatalf("flow should be running: disconnected=%v active=%v", f.Disconnected(), f.Active())
	}
	found := false
	for _, p := range f.paths {
		for _, ref := range p.links {
			if ref.Link.ID == target.ID {
				found = true
			}
		}
	}
	if !found {
		t.Error("restored link not readopted into the path set")
	}
	if len(f.Outages()) != 0 {
		t.Errorf("multipath flow should never have disconnected, outages=%v", f.Outages())
	}
}

// TestOutageClosesAfterRestore cuts every link of the source AS: the flow
// records an outage window, and once the links heal and revocation state
// lapses it reconnects and resumes sending.
func TestOutageClosesAfterRestore(t *testing.T) {
	const ttl = 120 * time.Millisecond
	n, eng := demoEngineTTL(t, ttl)
	f := eng.Add(FlowSpec{ID: 2, Src: b3, Dst: a1, Start: 0, Size: 0})

	all := append([]*topology.Link(nil), n.Topo.AS(b3).Links...)
	n.Clock().Schedule(10*time.Millisecond, func() {
		for _, l := range all {
			toggleLink(t, n, l, false)
		}
	})
	n.Clock().Schedule(200*time.Millisecond, func() {
		for _, l := range all {
			toggleLink(t, n, l, true)
		}
	})
	var sentAtRestore int64
	n.Clock().Schedule(201*time.Millisecond, func() { sentAtRestore = f.Sent() })
	eng.RunUntil(800 * time.Millisecond)

	if len(f.Outages()) == 0 {
		t.Fatal("isolating the source AS recorded no outage")
	}
	if f.Disconnected() {
		t.Fatal("flow still disconnected after links restored and TTL lapsed")
	}
	if f.Failed() {
		t.Fatal("flow failed instead of riding out the outage")
	}
	if f.Sent() <= sentAtRestore {
		t.Errorf("no bytes delivered after restoration (%d at restore, %d at end)",
			sentAtRestore, f.Sent())
	}
}

// TestRetryBackoffSpacing pins the re-query schedule: with jitter
// disabled, consecutive empty lookups must be spaced by capped
// exponential backoff, measured off the deterministic simulation clock.
func TestRetryBackoffSpacing(t *testing.T) {
	n, err := scion.NewNetwork(topology.Demo(), scion.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var calls []sim.Time
	provider := func(src, dst addr.IA) ([]*dataplane.FwdPath, error) {
		calls = append(calls, n.Clock().Now())
		return nil, fmt.Errorf("path service down")
	}
	eng, err := NewEngine(Config{
		Clock:         n.Clock(),
		Net:           n.Fabric().Net,
		Fabric:        n.Fabric(),
		Provider:      provider,
		RetryDelay:    10 * time.Millisecond,
		RetryBackoff:  2,
		RetryDelayMax: 80 * time.Millisecond,
		RetryJitter:   -1, // disable jitter: spacing must be exact
		MaxRetries:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := eng.Add(FlowSpec{ID: 3, Src: a6, Dst: a4, Start: 0, Size: 1 << 20})
	eng.Run()

	if !f.Failed() {
		t.Fatalf("flow should fail after %d empty lookups", 8)
	}
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1: base delay
		20 * time.Millisecond, // doubled
		40 * time.Millisecond,
		80 * time.Millisecond, // cap reached
		80 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond,
	}
	if len(calls) != len(want)+1 {
		t.Fatalf("provider called %d times, want %d", len(calls), len(want)+1)
	}
	for i, w := range want {
		if got := time.Duration(calls[i+1] - calls[i]); got != w {
			t.Errorf("spacing %d: got %v, want %v", i, got, w)
		}
	}
}

// TestRetryJitterDeterministic: with jitter enabled, two engines with the
// same seed must produce identical re-query timestamps, and a different
// seed must not.
func TestRetryJitterDeterministic(t *testing.T) {
	timestamps := func(seed int64) []sim.Time {
		n, err := scion.NewNetwork(topology.Demo(), scion.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var calls []sim.Time
		provider := func(src, dst addr.IA) ([]*dataplane.FwdPath, error) {
			calls = append(calls, n.Clock().Now())
			return nil, fmt.Errorf("down")
		}
		eng, err := NewEngine(Config{
			Clock: n.Clock(), Net: n.Fabric().Net, Fabric: n.Fabric(),
			Provider: provider, MaxRetries: 6, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Add(FlowSpec{ID: 1, Src: a6, Dst: a4, Start: 0, Size: 1 << 20})
		eng.Run()
		return calls
	}
	a, b := timestamps(5), timestamps(5)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("call counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := timestamps(6)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical jittered schedules")
	}
}
