package traffic

import (
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// FlowSpec describes one flow of the workload before it starts.
type FlowSpec struct {
	// ID must be unique within an engine and fit in 24 bits (it is encoded
	// into head-packet payloads and host addresses).
	ID int
	// Src and Dst are the endpoint ASes.
	Src, Dst addr.IA
	// Start is the arrival time relative to simulation start.
	Start time.Duration
	// Size is the number of bytes to transfer; <= 0 means open-ended (the
	// flow sends until the simulation deadline).
	Size int64
}

// flowPath is one authorized forwarding path a flow stripes over,
// together with the capacity-model view of it.
type flowPath struct {
	fp    *dataplane.FwdPath
	links []dataplane.LinkRef
	// delay is the one-way propagation delay along the path.
	delay time.Duration
	// bottleneck is the smallest link rate on the path (bytes/s).
	bottleneck float64
	// busyUntil is when the path finishes serializing its current chunk.
	busyUntil sim.Time
	// sent is how many bytes this path has carried (net of rewinds).
	sent int64
	// lost is how many bytes SCMP revocations rewound off this path; with
	// sent it yields the path's observed loss fraction.
	lost    int64
	revoked bool
}

type flowState int

const (
	flowPending flowState = iota
	flowActive
	flowDone
	flowFailed
)

// Flow is one transfer striped over a set of paths by a scheduler. All
// methods are driven by the engine's event loop; Flow itself is passive.
type Flow struct {
	spec  FlowSpec
	sched Scheduler
	paths []*flowPath
	infos []PathInfo // scratch for scheduler decisions

	// shared caches each path's link-overlap count against the flow's
	// active set (paths currently carrying bytes); sharedDirty marks it
	// for recomputation when the path set or the active set changes, so
	// the O(paths²·links) scan runs per change, not per chunk.
	shared      []int
	sharedDirty bool

	state    flowState
	started  sim.Time
	finished sim.Time

	sent, lost int64
	// lastPath tracks the previous chunk's path for switch counting.
	lastPath  int
	switches  int
	lookups   int
	requeries int
	reprobes  int
	retries   int

	// Outage tracking: a window opens when a previously connected flow
	// drops to zero usable paths and closes when it regains one; the
	// closed windows are the flow's time-to-reconnect samples.
	everConnected bool
	inOutage      bool
	outageStart   sim.Time
	outages       []time.Duration

	// wakePending/wakeAt dedupe scheduled pump wake-ups.
	wakePending bool
	wakeAt      sim.Time
}

// ID returns the flow's workload identifier.
func (f *Flow) ID() int { return f.spec.ID }

// Src returns the source AS.
func (f *Flow) Src() addr.IA { return f.spec.Src }

// Dst returns the destination AS.
func (f *Flow) Dst() addr.IA { return f.spec.Dst }

// Size returns the configured transfer size (<= 0 for open-ended).
func (f *Flow) Size() int64 { return f.spec.Size }

// Sent returns the bytes successfully admitted (losses already rewound).
func (f *Flow) Sent() int64 { return f.sent }

// Lost returns the bytes dropped on revoked links and retransmitted.
func (f *Flow) Lost() int64 { return f.lost }

// Done reports completion.
func (f *Flow) Done() bool { return f.state == flowDone }

// Failed reports that the flow ran out of paths and gave up.
func (f *Flow) Failed() bool { return f.state == flowFailed }

// Active reports that the flow started but has not finished.
func (f *Flow) Active() bool { return f.state == flowActive }

// PathSwitches returns how often consecutive chunks used different paths.
func (f *Flow) PathSwitches() int { return f.switches }

// Requeries returns how often the flow went back to path lookup after
// its initial one (forced switches due to revocation or path exhaustion).
func (f *Flow) Requeries() int { return f.requeries }

// Reprobes returns how often the flow refreshed its path set after
// revocation knowledge expired (mid-flow readoption of healed paths).
func (f *Flow) Reprobes() int { return f.reprobes }

// NumPaths returns the current path-set size.
func (f *Flow) NumPaths() int { return len(f.paths) }

// Outages returns the flow's completed disconnection windows — the time
// from losing the last usable path to regaining one (time-to-reconnect).
func (f *Flow) Outages() []time.Duration { return f.outages }

// Disconnected reports whether the flow is currently inside an outage.
func (f *Flow) Disconnected() bool { return f.inOutage }

// OpenOutage returns how long the flow has been disconnected as of now
// (zero when connected) — the still-open window Outages does not include.
func (f *Flow) OpenOutage(now sim.Time) time.Duration {
	if !f.inOutage || now <= f.outageStart {
		return 0
	}
	return time.Duration(now - f.outageStart)
}

// FCT returns the flow completion time (0 until done).
func (f *Flow) FCT() time.Duration {
	if f.state != flowDone {
		return 0
	}
	return time.Duration(f.finished - f.started)
}

// Goodput returns delivered bytes per second of virtual time, using now
// as the end of the observation window for unfinished flows.
func (f *Flow) Goodput(now sim.Time) float64 {
	end := now
	if f.state == flowDone {
		end = f.finished
	}
	d := time.Duration(end - f.started).Seconds()
	if f.state == flowPending || d <= 0 {
		return 0
	}
	return float64(f.sent) / d
}

// PathStat is the per-path observable of one flow.
type PathStat struct {
	Hops       int
	Delay      time.Duration
	Bottleneck float64
	Sent       int64
	Revoked    bool
}

// PathStats returns one entry per path in path-set order.
func (f *Flow) PathStats() []PathStat {
	out := make([]PathStat, len(f.paths))
	for i, p := range f.paths {
		out[i] = PathStat{
			Hops:       len(p.fp.Hops),
			Delay:      p.delay,
			Bottleneck: p.bottleneck,
			Sent:       p.sent,
			Revoked:    p.revoked,
		}
	}
	return out
}

// recomputeShared rebuilds the cached per-path disjointness signal:
// shared[i] counts path i's links that some other active path (sent > 0,
// not revoked) also traverses. Shared 0 means fully disjoint from the
// active set.
func (f *Flow) recomputeShared() {
	f.sharedDirty = false
	for len(f.shared) < len(f.paths) {
		f.shared = append(f.shared, 0)
	}
	f.shared = f.shared[:len(f.paths)]
	for i, p := range f.paths {
		n := 0
		for _, ref := range p.links {
			for j, q := range f.paths {
				if j == i || q.revoked || q.sent == 0 {
					continue
				}
				if pathHasLink(q, ref.Link.ID) {
					n++
					break
				}
			}
		}
		f.shared[i] = n
	}
}

// pathHasLink reports whether p traverses the link.
func pathHasLink(p *flowPath, id topology.LinkID) bool {
	for _, ref := range p.links {
		if ref.Link.ID == id {
			return true
		}
	}
	return false
}

// usablePaths counts paths that are not revoked.
func (f *Flow) usablePaths() int {
	n := 0
	for _, p := range f.paths {
		if !p.revoked {
			n++
		}
	}
	return n
}

// remaining returns how many bytes are still to send (ChunkSize-capped
// for open-ended flows).
func (f *Flow) remaining(chunk int64) int64 {
	if f.spec.Size <= 0 {
		return chunk
	}
	r := f.spec.Size - f.sent
	if r < 0 {
		r = 0
	}
	return r
}
