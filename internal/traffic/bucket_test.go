package traffic

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// twoLinkPath builds a tiny topology and returns the link refs of its only
// two-link path A -> B -> C.
func twoLinkPath(t *testing.T) []dataplane.LinkRef {
	t.Helper()
	g := topology.New()
	a, b, c := addr.MustIA(1, 11), addr.MustIA(1, 12), addr.MustIA(1, 13)
	g.AddAS(a, true)
	g.AddAS(b, true)
	g.AddAS(c, true)
	l1 := g.MustConnect(a, b, topology.Core)
	l2 := g.MustConnect(b, c, topology.Core)
	return []dataplane.LinkRef{{Link: l1, From: a}, {Link: l2, From: b}}
}

func TestAdmitGrantsBottleneckShare(t *testing.T) {
	refs := twoLinkPath(t)
	m := NewLinkModel(UniformCapacity(1e6)) // 1 MB/s, 50ms burst = 50k tokens
	granted, wait := m.Admit(0, refs, 30_000)
	if granted != 30_000 || wait != 0 {
		t.Fatalf("granted=%d wait=%v", granted, wait)
	}
	// 20k tokens left; asking for 64k grants the remainder.
	granted, wait = m.Admit(0, refs, 64_000)
	if granted != 20_000 || wait != 0 {
		t.Fatalf("granted=%d wait=%v", granted, wait)
	}
	// Bucket empty: no grant, positive wait.
	granted, wait = m.Admit(0, refs, 64_000)
	if granted != 0 || wait <= 0 {
		t.Fatalf("granted=%d wait=%v", granted, wait)
	}
	// After the advertised wait the tokens are back (capped at burst).
	now := sim.Time(wait)
	granted, _ = m.Admit(now, refs, 40_000)
	if granted == 0 {
		t.Fatalf("no grant after waiting %v", wait)
	}
}

func TestAdmitRefillIsRateBound(t *testing.T) {
	refs := twoLinkPath(t)
	m := NewLinkModel(UniformCapacity(1e6))
	// Drain the burst, then measure sustained admission over one second.
	m.Admit(0, refs, 1<<30)
	total := int64(0)
	for step := 1; step <= 100; step++ {
		now := sim.Time(time.Duration(step) * 10 * time.Millisecond)
		g, _ := m.Admit(now, refs, 1<<20)
		total += g
	}
	// 1 second at 1 MB/s: within rounding of 1e6 bytes.
	if total < 990_000 || total > 1_010_000 {
		t.Errorf("sustained admission = %d bytes/s, want ~1e6", total)
	}
}

func TestBottleneckAndUtilizations(t *testing.T) {
	refs := twoLinkPath(t)
	m := NewLinkModel(func(l *topology.Link) float64 {
		if l.ID == refs[0].Link.ID {
			return 2e6
		}
		return 5e5
	})
	if got := m.Bottleneck(refs); got != 5e5 {
		t.Errorf("bottleneck = %v", got)
	}
	if got := m.Bottleneck(nil); got != 0 {
		t.Errorf("empty path bottleneck = %v", got)
	}
	g, _ := m.Admit(0, refs, 10_000)
	if g != 10_000 {
		t.Fatalf("granted = %d", g)
	}
	utils := m.Utilizations(time.Second)
	if len(utils) != 2 {
		t.Fatalf("utilizations = %d entries", len(utils))
	}
	if utils[0].ID > utils[1].ID {
		t.Error("not sorted by link ID")
	}
	for _, u := range utils {
		if u.Bytes != 10_000 {
			t.Errorf("link %d bytes = %v", u.ID, u.Bytes)
		}
		if want := 10_000 / (u.Rate * 1.0); u.Util != want {
			t.Errorf("link %d util = %v, want %v", u.ID, u.Util, want)
		}
	}
}

func TestRelCapacityDeterministicAndBounded(t *testing.T) {
	g := topology.New()
	x, y := addr.MustIA(1, 21), addr.MustIA(1, 22)
	g.AddAS(x, true)
	g.AddAS(y, true)
	l := g.MustConnect(x, y, topology.Core)
	p := RelCapacity(1e9, 2.5e8, 1e8)
	first := p(l)
	if first < 0.75e9 || first >= 1.25e9 {
		t.Errorf("core capacity %v outside jitter band", first)
	}
	if again := p(l); again != first {
		t.Error("capacity not deterministic")
	}
	if DefaultCapacity()(l) <= 0 {
		t.Error("default capacity not positive")
	}
}

func TestAdmitAtLeastHoldsForFloor(t *testing.T) {
	refs := twoLinkPath(t)
	m := NewLinkModel(UniformCapacity(1e6)) // 50k-token burst
	// Leave 20k tokens, below a 30k floor: nothing trickles out.
	if g, _ := m.Admit(0, refs, 30_000); g != 30_000 {
		t.Fatalf("setup grant: %d", g)
	}
	granted, wait := m.AdmitAtLeast(0, refs, 64_000, 30_000)
	if granted != 0 || wait <= 0 {
		t.Fatalf("below floor: granted=%d wait=%v", granted, wait)
	}
	// The advertised wait targets the floor, not the full want: 10k
	// missing tokens at 1 MB/s is 10ms.
	if wait != 10*time.Millisecond {
		t.Errorf("wait=%v, want 10ms (time to floor)", wait)
	}
	// Once the floor fits, the grant is everything available.
	granted, _ = m.AdmitAtLeast(sim.Time(wait), refs, 64_000, 30_000)
	if granted != 30_000 {
		t.Errorf("at floor: granted=%d, want 30000", granted)
	}
	// A floor above the burst depth is clamped, not a deadlock.
	m.Admit(sim.Time(wait), refs, 1<<30) // drain
	now := sim.Time(200 * time.Millisecond)
	granted, _ = m.AdmitAtLeast(now, refs, 1<<30, 1<<30)
	if granted != 50_000 {
		t.Errorf("clamped floor: granted=%d, want full 50k burst", granted)
	}
	// Floor zero is plain Admit: partial grants flow again.
	now += sim.Time(10 * time.Millisecond) // 10k tokens refilled
	granted, _ = m.AdmitAtLeast(now, refs, 64_000, 0)
	if granted != 10_000 {
		t.Errorf("floor 0: granted=%d, want the 10k partial grant", granted)
	}
}
