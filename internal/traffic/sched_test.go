package traffic

import (
	"testing"
	"time"
)

func TestNewSchedulerNames(t *testing.T) {
	for _, name := range []string{"single-best", "round-robin", "weighted", "latency"} {
		factory, err := NewScheduler(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s := factory(); s.Name() != name {
			t.Errorf("factory(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := NewScheduler("nope"); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestSingleBestWaitsForBestPath(t *testing.T) {
	s := &SingleBest{}
	paths := []PathInfo{
		{Hops: 5},
		{Hops: 3},
		{Hops: 4},
	}
	if got := s.Pick(paths); got != 1 {
		t.Errorf("pick = %d, want 1", got)
	}
	paths[1].Busy = true
	if got := s.Pick(paths); got != -1 {
		t.Errorf("busy best: pick = %d, want -1 (wait, don't spill)", got)
	}
	paths[1].Revoked = true
	if got := s.Pick(paths); got != 2 {
		t.Errorf("revoked best: pick = %d, want 2 (next shortest)", got)
	}
	for i := range paths {
		paths[i].Revoked = true
	}
	if got := s.Pick(paths); got != -1 {
		t.Errorf("all revoked: pick = %d", got)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	s := &RoundRobin{}
	paths := make([]PathInfo, 3)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, s.Pick(paths))
	}
	want := []int{1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
	paths[1].Revoked = true
	paths[2].Busy = true
	if idx := s.Pick(paths); idx != 0 {
		t.Errorf("only idle usable is 0, got %d", idx)
	}
	paths[0].Busy = true
	if idx := s.Pick(paths); idx != -1 {
		t.Errorf("no idle usable, got %d", idx)
	}
}

func TestWeightedBottleneckProportional(t *testing.T) {
	s := &WeightedBottleneck{}
	paths := []PathInfo{
		{Bottleneck: 3e8},
		{Bottleneck: 1e8},
	}
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		idx := s.Pick(paths)
		if idx < 0 {
			t.Fatal("refused with idle paths")
		}
		counts[idx]++
	}
	// 3:1 capacity ratio must yield a 3:1 chunk split.
	if counts[0] != 300 || counts[1] != 100 {
		t.Errorf("split = %v, want 300/100", counts)
	}
	paths[0].Revoked = true
	if idx := s.Pick(paths); idx != 1 {
		t.Errorf("revoked path picked: %d", idx)
	}
}

func TestLatencyAwareStretchBound(t *testing.T) {
	s := &LatencyAware{Stretch: 1.5}
	paths := []PathInfo{
		{Delay: 10 * time.Millisecond},
		{Delay: 14 * time.Millisecond},
		{Delay: 40 * time.Millisecond},
	}
	if idx := s.Pick(paths); idx != 0 {
		t.Errorf("pick = %d, want lowest latency 0", idx)
	}
	paths[0].Busy = true
	if idx := s.Pick(paths); idx != 1 {
		t.Errorf("pick = %d, want 1 (within stretch)", idx)
	}
	paths[1].Busy = true
	// Path 2 is beyond 1.5x the best delay: wait instead.
	if idx := s.Pick(paths); idx != -1 {
		t.Errorf("pick = %d, want -1 (outside stretch bound)", idx)
	}
	paths[0].Revoked = true
	paths[1].Revoked = true
	// Best usable delay is now 40ms, so path 2 qualifies.
	paths[1].Busy = false
	if idx := s.Pick(paths); idx != 2 {
		t.Errorf("pick = %d, want 2", idx)
	}
}
