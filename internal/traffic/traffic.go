// Package traffic is a flow-level multipath workload engine over the
// simulated SCION fabric. It models what the paper's data-plane evaluation
// measures end to end: many concurrent flows obtain path sets from the
// control plane, stripe chunks across paths under a pluggable multipath
// scheduler, contend for per-link capacity in token buckets, and fail over
// within one RTT when SCMP revocations arrive (paper §4.1, §6.2).
//
// Capacity is fluid — chunks (64 KiB by default) are admitted against the
// token buckets of every link direction on the path — but each chunk also
// sends one small "head packet" through the real dataplane.Fabric, so hop
// field MACs are verified and link failures produce genuine SCMP messages
// carrying the original packet. The SCMP handler rewinds exactly the chunk
// the head packet announced, giving exact loss accounting without
// simulating every wire packet of multi-gigabyte transfers.
package traffic

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// PathProvider returns the authorized forwarding paths from src to dst —
// typically scion.Host.Paths or a pathdb-backed lookup.
type PathProvider func(src, dst addr.IA) ([]*dataplane.FwdPath, error)

// Config wires an Engine to a simulated network.
type Config struct {
	// Clock is the shared event loop.
	Clock *sim.Simulator
	// Net is the message transport (used for per-link delays).
	Net *sim.Network
	// Fabric forwards head packets and produces SCMP revocations.
	Fabric *dataplane.Fabric
	// Provider supplies path sets.
	Provider PathProvider
	// Links is the capacity model (NewLinkModel(nil) if unset).
	Links *LinkModel
	// Scheduler builds each flow's scheduler (weighted if unset).
	Scheduler func() Scheduler
	// ChunkSize is the fluid admission quantum (default 64 KiB).
	ChunkSize int64
	// MinGrant is the smallest admission the engine accepts from the
	// link model (0 = any). Under path contention partial grants shrink
	// toward single bytes, each carrying a MAC-verified head packet; a
	// floor trades a bounded wait for chunk-sized admissions instead.
	MinGrant int64
	// MaxPaths caps the per-flow path set (default 8).
	MaxPaths int
	// RetryDelay is the base spacing of path re-queries when none are
	// usable (default 50ms).
	RetryDelay time.Duration
	// RetryBackoff multiplies the re-query delay after every consecutive
	// empty lookup (capped exponential backoff, default 2; 1 keeps the
	// delay constant).
	RetryBackoff float64
	// RetryDelayMax caps the backed-off re-query delay (default 2s).
	RetryDelayMax time.Duration
	// RetryJitter adds a seeded random extra delay of up to this
	// fraction of the backed-off delay, de-synchronizing re-queries of
	// flows that lost their paths simultaneously (default 0.2; negative
	// disables jitter).
	RetryJitter float64
	// MaxRetries bounds consecutive empty re-queries before a flow fails
	// (default 5).
	MaxRetries int
	// RevocationTTL bounds how long an SCMP-learned link failure keeps
	// filtering paths at the source (default 10s). When it lapses the
	// engine re-probes affected flows, readopting restored paths
	// mid-flow; if the link is still down the next head packet re-learns
	// the failure within one RTT.
	RevocationTTL time.Duration
	// RevocationAge, if set, reports how long ago the control plane last
	// learned of a revocation on any of the given links (negative =
	// never) — the pathdb revocation-recency feed (for example
	// scion.Network.PathRevocationAge) behind the PathInfo.RevokedAge
	// signal. The engine merges it with its own SCMP-learned history and
	// reports whichever revocation is more recent.
	RevocationAge func(src addr.IA, links []dataplane.LinkRef) time.Duration
	// Seed drives the re-query jitter (default 1).
	Seed int64
	// Telemetry, if set, receives the engine's counters and the
	// flow-duration histogram (virtual-time observations, deterministic).
	// Trace events (flow retries and failover switches) go to the
	// Clock's tracer when one is attached.
	Telemetry *telemetry.Registry
}

// Engine runs flows over the fabric. Create with NewEngine, Add flows,
// then Run (sized flows) or RunUntil (open-ended workloads).
type Engine struct {
	cfg Config

	flows []*Flow
	byID  map[int]*Flow
	bySrc map[addr.IA][]*Flow
	// revoked is each source AS's accumulated link-failure knowledge,
	// learned from SCMP messages and used to filter re-queried paths
	// (path servers may lag behind the data plane). Entries map to the
	// expiry of the knowledge: failure state is soft and lapses after
	// RevocationTTL, at which point affected flows re-probe and readopt
	// restored paths.
	revoked map[addr.IA]map[topology.LinkID]sim.Time
	// revHist remembers when each source last saw an SCMP revocation per
	// link — unlike revoked it never expires, feeding the policies'
	// revocation-recency signal (PathInfo.RevokedAge).
	revHist map[addr.IA]map[topology.LinkID]sim.Time
	hooked  map[addr.IA]bool
	// rng drives re-query jitter; the event loop is single-threaded, so
	// a seeded source keeps runs reproducible.
	rng *rand.Rand

	// OnRevocation, if set, observes every SCMP revocation the engine
	// attributes to one of its flows.
	OnRevocation func(f *Flow, link topology.LinkID)

	// Revocations counts SCMP revoked-link messages processed; Requeries
	// counts path re-queries; Reprobes counts opportunistic re-lookups
	// after revocation state expired.
	Revocations uint64
	Requeries   uint64
	Reprobes    uint64

	// Telemetry cells and the flow-duration histogram (nil no-ops). The
	// engine is serial, so everything lives on the serial shard.
	cStarted, cCompleted, cFailed         *telemetry.Cell
	cRequery, cReprobe, cSwitch, cRevoked *telemetry.Cell
	hDuration                             *telemetry.HistCell
}

// NewEngine validates the config and applies defaults.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Clock == nil || cfg.Net == nil || cfg.Fabric == nil || cfg.Provider == nil {
		return nil, fmt.Errorf("traffic: Clock, Net, Fabric and Provider are required")
	}
	if cfg.Links == nil {
		cfg.Links = NewLinkModel(nil)
	}
	if cfg.Scheduler == nil {
		// Default confirmed by the strategy tournament (-exp tournament,
		// EXPERIMENTS.md): weighted wins or ties every grid cell on
		// goodput.
		cfg.Scheduler = func() Scheduler { return &WeightedBottleneck{} }
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 64 << 10
	}
	if cfg.MaxPaths <= 0 {
		cfg.MaxPaths = 8
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 50 * time.Millisecond
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2
	}
	if cfg.RetryDelayMax <= 0 {
		cfg.RetryDelayMax = 2 * time.Second
	}
	if cfg.RetryJitter == 0 {
		cfg.RetryJitter = 0.2
	} else if cfg.RetryJitter < 0 {
		cfg.RetryJitter = 0
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.RevocationTTL <= 0 {
		cfg.RevocationTTL = 10 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	e := &Engine{
		cfg:     cfg,
		byID:    map[int]*Flow{},
		bySrc:   map[addr.IA][]*Flow{},
		revoked: map[addr.IA]map[topology.LinkID]sim.Time{},
		revHist: map[addr.IA]map[topology.LinkID]sim.Time{},
		hooked:  map[addr.IA]bool{},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	if reg := cfg.Telemetry; reg != nil {
		e.cStarted = reg.Counter("traffic_flows_started_total").Cell(0)
		e.cCompleted = reg.Counter("traffic_flows_completed_total").Cell(0)
		e.cFailed = reg.Counter("traffic_flows_failed_total").Cell(0)
		e.cRequery = reg.Counter("traffic_requeries_total").Cell(0)
		e.cReprobe = reg.Counter("traffic_reprobes_total").Cell(0)
		e.cSwitch = reg.Counter("traffic_path_switches_total").Cell(0)
		e.cRevoked = reg.Counter("traffic_revocations_total").Cell(0)
		// Completed-flow duration in virtual seconds: 1ms .. ~17min.
		e.hDuration = reg.Histogram("traffic_flow_duration_seconds",
			telemetry.ExpBuckets(0.001, 4, 10)).Cell(0)
	}
	return e, nil
}

// trace emits a flow lifecycle event via the clock's tracer (serial
// context; no-op when no tracer is attached).
func (e *Engine) trace(kind telemetry.EventKind, f *Flow, aux uint64, reason string) {
	e.cfg.Clock.Trace(sim.SerialShard, telemetry.Event{
		Kind:    kind,
		Actor:   f.spec.Src.Uint64(),
		Subject: uint64(uint32(f.spec.ID)),
		Aux:     aux,
		Reason:  reason,
	})
}

// Links exposes the capacity model (for utilization reporting).
func (e *Engine) Links() *LinkModel { return e.cfg.Links }

// Flows returns all flows in Add order.
func (e *Engine) Flows() []*Flow { return e.flows }

// Add registers a flow and schedules its arrival.
func (e *Engine) Add(spec FlowSpec) *Flow {
	f := &Flow{spec: spec, sched: e.cfg.Scheduler(), lastPath: -1}
	e.flows = append(e.flows, f)
	e.byID[spec.ID] = f
	e.bySrc[spec.Src] = append(e.bySrc[spec.Src], f)
	if !e.hooked[spec.Src] {
		e.hooked[spec.Src] = true
		src := spec.Src
		e.cfg.Fabric.AddSCMP(src, func(msg *dataplane.SCMP) { e.handleSCMP(src, msg) })
	}
	e.cfg.Clock.Schedule(spec.Start, func() { e.start(f) })
	return f
}

// Run drives the event loop until it drains and returns the summary. Use
// only with sized flows — open-ended flows never drain the loop.
func (e *Engine) Run() *Summary {
	e.cfg.Clock.Run()
	return e.Summarize()
}

// RunUntil drives the event loop up to the deadline and returns the
// summary at that instant.
func (e *Engine) RunUntil(d time.Duration) *Summary {
	e.cfg.Clock.RunUntil(sim.Time(d))
	return e.Summarize()
}

// start performs the flow's initial path lookup.
func (e *Engine) start(f *Flow) {
	f.state = flowActive
	f.started = e.cfg.Clock.Now()
	e.cStarted.Inc()
	e.requery(f)
}

// requery fetches a fresh path set, filters links the source knows to be
// revoked, and resumes the pump. Counting: a forced mid-transfer switch is
// recorded when data already flowed.
func (e *Engine) requery(f *Flow) {
	if f.state != flowActive {
		return
	}
	f.lookups++
	if f.lookups > 1 {
		// The initial lookup is not a re-query.
		f.requeries++
		e.Requeries++
		e.cRequery.Inc()
	}
	fps, err := e.cfg.Provider(f.spec.Src, f.spec.Dst)
	var paths []*flowPath
	if err == nil {
		paths = e.buildPaths(f.spec.Src, fps)
	}
	if len(paths) == 0 {
		f.retries++
		e.noteConnectivity(f)
		if f.retries >= e.cfg.MaxRetries {
			f.state = flowFailed
			f.finished = e.cfg.Clock.Now()
			e.cFailed.Inc()
			e.trace(telemetry.FlowRetry, f, uint64(f.retries), "exhausted")
			return
		}
		e.trace(telemetry.FlowRetry, f, uint64(f.retries), "empty")
		e.cfg.Clock.Schedule(e.retryDelay(f.retries), func() { e.requery(f) })
		return
	}
	f.retries = 0
	if f.sent > 0 {
		// A mid-transfer re-query is a forced path switch.
		f.switches++
		e.cSwitch.Inc()
		e.trace(telemetry.FlowSwitch, f, uint64(len(paths)), "requery")
	}
	f.paths = paths
	f.infos = f.infos[:0]
	f.lastPath = -1
	f.sharedDirty = true
	e.noteConnectivity(f)
	e.wakeAt(f, e.cfg.Clock.Now())
}

// retryDelay computes the spacing before the attempt-th consecutive
// empty re-query: capped exponential backoff plus seeded jitter, so a
// flow with zero healthy paths does not hot-loop the path server and
// flows cut off together do not re-query in lockstep.
func (e *Engine) retryDelay(attempt int) time.Duration {
	d := float64(e.cfg.RetryDelay) * math.Pow(e.cfg.RetryBackoff, float64(attempt-1))
	if max := float64(e.cfg.RetryDelayMax); d > max {
		d = max
	}
	if e.cfg.RetryJitter > 0 {
		d += d * e.cfg.RetryJitter * e.rng.Float64()
	}
	return time.Duration(d)
}

// reprobe refreshes a flow's path set opportunistically after
// revocation knowledge lapsed: a successful lookup replaces the set, so
// restored paths are readopted mid-flow. Unlike requery, a fruitless
// lookup keeps the current paths and never counts toward the retry
// limit — the flow keeps sending on whatever it has.
func (e *Engine) reprobe(f *Flow) {
	if f.state != flowActive {
		return
	}
	fps, err := e.cfg.Provider(f.spec.Src, f.spec.Dst)
	if err != nil {
		return
	}
	paths := e.buildPaths(f.spec.Src, fps)
	if len(paths) == 0 {
		return
	}
	f.lookups++
	f.reprobes++
	e.Reprobes++
	e.cReprobe.Inc()
	f.retries = 0
	f.paths = paths
	f.infos = f.infos[:0]
	f.lastPath = -1
	f.sharedDirty = true
	e.noteConnectivity(f)
	e.wakeAt(f, e.cfg.Clock.Now())
}

// noteConnectivity tracks disconnection windows: an outage opens when a
// previously connected flow reaches zero usable paths and closes when
// it regains one. Closed windows are the flow's time-to-reconnect
// samples.
func (e *Engine) noteConnectivity(f *Flow) {
	now := e.cfg.Clock.Now()
	if f.usablePaths() > 0 {
		if f.inOutage {
			f.inOutage = false
			f.outages = append(f.outages, time.Duration(now-f.outageStart))
		}
		f.everConnected = true
		return
	}
	if f.everConnected && !f.inOutage {
		f.inOutage = true
		f.outageStart = now
	}
}

// buildPaths resolves forwarding paths against topology and capacity,
// dropping paths that cross links src knows to be revoked.
func (e *Engine) buildPaths(src addr.IA, fps []*dataplane.FwdPath) []*flowPath {
	known := e.revoked[src]
	out := make([]*flowPath, 0, e.cfg.MaxPaths)
	for _, fp := range fps {
		if len(out) >= e.cfg.MaxPaths {
			break
		}
		links, err := fp.LinkRefs(e.cfg.Net.Topo)
		if err != nil || len(links) == 0 {
			continue
		}
		bad := false
		var delay time.Duration
		for _, ref := range links {
			if _, revoked := known[ref.Link.ID]; revoked {
				bad = true
				break
			}
			delay += e.cfg.Net.LinkDelay(ref.Link.ID)
		}
		if bad {
			continue
		}
		out = append(out, &flowPath{
			fp:         fp,
			links:      links,
			delay:      delay,
			bottleneck: e.cfg.Links.Bottleneck(links),
		})
	}
	return out
}

// wakeAt schedules a pump step at t, deduping against an earlier or equal
// pending wake-up.
func (e *Engine) wakeAt(f *Flow, t sim.Time) {
	now := e.cfg.Clock.Now()
	if t < now {
		t = now
	}
	if f.wakePending && f.wakeAt <= t {
		return
	}
	f.wakePending = true
	f.wakeAt = t
	at := t
	e.cfg.Clock.At(t, func() {
		if f.wakePending && f.wakeAt == at {
			f.wakePending = false
		}
		e.pump(f)
	})
}

// pump is the per-flow transmission loop body: one scheduler decision and
// at most one admitted chunk per invocation, then self-rescheduling.
func (e *Engine) pump(f *Flow) {
	if f.state != flowActive {
		return
	}
	now := e.cfg.Clock.Now()
	rem := f.remaining(e.cfg.ChunkSize)
	if rem == 0 {
		e.maybeFinish(f)
		return
	}
	if f.usablePaths() == 0 {
		e.requery(f)
		return
	}
	if f.sharedDirty {
		f.recomputeShared()
	}
	hist := e.revHist[f.spec.Src]
	f.infos = f.infos[:0]
	for i, p := range f.paths {
		var loss float64
		if gross := p.sent + p.lost; gross > 0 {
			loss = float64(p.lost) / float64(gross)
		}
		shared := 0
		if i < len(f.shared) {
			shared = f.shared[i]
		}
		f.infos = append(f.infos, PathInfo{
			Hops:       len(p.fp.Hops),
			Delay:      p.delay,
			Bottleneck: p.bottleneck,
			Sent:       p.sent,
			Busy:       p.busyUntil > now,
			Revoked:    p.revoked,
			Loss:       loss,
			RTT:        2 * p.delay,
			Links:      len(p.links),
			Shared:     shared,
			RevokedAge: e.revokedAge(hist, f.spec.Src, p, now),
		})
	}
	idx := f.sched.Pick(f.infos)
	if idx < 0 || idx >= len(f.paths) || f.paths[idx].revoked {
		// Wait for the earliest busy usable path to drain.
		wake := sim.Time(-1)
		for _, p := range f.paths {
			if p.revoked || p.busyUntil <= now {
				continue
			}
			if wake < 0 || p.busyUntil < wake {
				wake = p.busyUntil
			}
		}
		if wake < 0 {
			wake = now + sim.Time(e.cfg.RetryDelay)
		}
		e.wakeAt(f, wake)
		return
	}
	p := f.paths[idx]
	want := rem
	if want > e.cfg.ChunkSize {
		want = e.cfg.ChunkSize
	}
	granted, wait := e.cfg.Links.AdmitAtLeast(now, p.links, want, e.cfg.MinGrant)
	if granted == 0 {
		e.wakeAt(f, now+sim.Time(wait))
		return
	}
	if p.sent == 0 {
		// First bytes on this path change the flow's active set.
		f.sharedDirty = true
	}
	p.sent += granted
	f.sent += granted
	tx := time.Duration(float64(granted) / p.bottleneck * float64(time.Second))
	if tx < time.Microsecond {
		tx = time.Microsecond
	}
	p.busyUntil = now + sim.Time(tx)
	if f.lastPath >= 0 && f.lastPath != idx {
		f.switches++
		e.cSwitch.Inc()
		if f.paths[f.lastPath].revoked {
			// Only failovers away from a revoked path are traced; the
			// scheduler's routine striping alternation would flood the ring.
			e.trace(telemetry.FlowSwitch, f, uint64(idx), "failover")
		}
	}
	f.lastPath = idx
	// The head packet may fail synchronously at the source border router,
	// rewinding this very chunk — check completion only afterwards.
	e.injectHead(f, p, granted)
	if f.spec.Size > 0 && f.sent >= f.spec.Size {
		e.maybeFinish(f)
		return
	}
	e.wakeAt(f, now)
}

// revokedAge computes a path's revocation-recency signal: the time since
// the most recent revocation seen on any of its links, merging the
// source's own SCMP history with the optional control-plane feed
// (Config.RevocationAge). Negative means never.
func (e *Engine) revokedAge(hist map[topology.LinkID]sim.Time, src addr.IA, p *flowPath, now sim.Time) time.Duration {
	age := time.Duration(-1)
	if len(hist) > 0 {
		for _, ref := range p.links {
			if t, ok := hist[ref.Link.ID]; ok {
				if a := time.Duration(now - t); age < 0 || a < age {
					age = a
				}
			}
		}
	}
	if e.cfg.RevocationAge != nil {
		if a := e.cfg.RevocationAge(src, p.links); a >= 0 && (age < 0 || a < age) {
			age = a
		}
	}
	return age
}

// maybeFinish schedules the completion check for when all in-flight data
// has drained (serialization plus propagation); an SCMP rewind in the
// meantime reopens the flow instead.
func (e *Engine) maybeFinish(f *Flow) {
	if f.state != flowActive || f.spec.Size <= 0 || f.sent < f.spec.Size {
		return
	}
	now := e.cfg.Clock.Now()
	fin := now
	for _, p := range f.paths {
		t := p.busyUntil
		if t < now {
			t = now
		}
		t += sim.Time(p.delay)
		if p.sent > 0 && t > fin {
			fin = t
		}
	}
	e.cfg.Clock.At(fin, func() {
		if f.state != flowActive {
			return
		}
		if f.sent >= f.spec.Size {
			f.state = flowDone
			f.finished = e.cfg.Clock.Now()
			e.cCompleted.Inc()
			e.hDuration.Observe(time.Duration(f.finished - f.started).Seconds())
			return
		}
		e.pump(f)
	})
}

// headMagic tags traffic head-packet payloads.
const headMagic = 0x54

// encodeHead packs (flowID, chunkBytes) into a head-packet payload.
func encodeHead(id int, granted int64) []byte {
	buf := make([]byte, 9)
	buf[0] = headMagic
	binary.BigEndian.PutUint32(buf[1:5], uint32(id))
	binary.BigEndian.PutUint32(buf[5:9], uint32(granted))
	return buf
}

// decodeHead reverses encodeHead.
func decodeHead(payload []byte) (id int, granted int64, ok bool) {
	if len(payload) != 9 || payload[0] != headMagic {
		return 0, 0, false
	}
	return int(binary.BigEndian.Uint32(payload[1:5])),
		int64(binary.BigEndian.Uint32(payload[5:9])), true
}

// hostFor derives a stable per-flow host address inside ia.
func hostFor(ia addr.IA, id int) addr.Host {
	return addr.HostIP4(ia, 10, byte(id>>16), byte(id>>8), byte(id))
}

// injectHead sends the chunk's head packet through the fabric.
func (e *Engine) injectHead(f *Flow, p *flowPath, granted int64) {
	pkt := &dataplane.Packet{
		Src:     hostFor(f.spec.Src, f.spec.ID),
		Dst:     hostFor(f.spec.Dst, f.spec.ID),
		Path:    p.fp,
		Payload: encodeHead(f.spec.ID, granted),
		// Flow identity on the wire (20-bit field), so traffic traces
		// can be replayed through the wire-format engine byte-for-byte.
		FlowID: uint32(f.spec.ID) & 0xfffff,
	}
	// Inject errors (and synchronous source-local SCMP) are reflected in
	// fabric counters and flow state; the pump carries on either way.
	_ = e.cfg.Fabric.Inject(pkt)
}

// handleSCMP processes control messages arriving at source AS src: a
// revoked-link message rewinds exactly the chunk its quoted head packet
// announced, marks the revoked link on every affected flow of this
// source, and kicks re-queries — the sub-RTT failover of paper §4.1.
func (e *Engine) handleSCMP(src addr.IA, msg *dataplane.SCMP) {
	if msg.Type != dataplane.SCMPRevokedLink || msg.Orig == nil {
		return
	}
	id, bytes, ok := decodeHead(msg.Orig.Payload)
	if !ok {
		return
	}
	f := e.byID[id]
	if f == nil || f.spec.Src != src {
		return
	}
	e.Revocations++
	e.cRevoked.Inc()
	link := e.cfg.Net.Topo.LinkByIf(msg.Link.IA, msg.Link.If)
	if link != nil {
		known := e.revoked[src]
		if known == nil {
			known = map[topology.LinkID]sim.Time{}
			e.revoked[src] = known
		}
		// Failure knowledge is soft state: it expires after
		// RevocationTTL (each fresh SCMP refreshes it), and on expiry
		// the source re-probes so healed paths come back into use.
		exp := e.cfg.Clock.Now() + sim.Time(e.cfg.RevocationTTL)
		known[link.ID] = exp
		id := link.ID
		e.cfg.Clock.At(exp, func() { e.expireRevocation(src, id, exp) })
		// Permanent history for the revocation-recency policy signal.
		hist := e.revHist[src]
		if hist == nil {
			hist = map[topology.LinkID]sim.Time{}
			e.revHist[src] = hist
		}
		hist[link.ID] = e.cfg.Clock.Now()
	}
	// Rewind the lost chunk on the path that carried the head packet.
	for _, p := range f.paths {
		if p.fp == msg.Orig.Path {
			p.revoked = true
			f.sharedDirty = true
			p.sent -= bytes
			if p.sent < 0 {
				p.sent = 0
			}
			p.lost += bytes
			f.sent -= bytes
			if f.sent < 0 {
				f.sent = 0
			}
			f.lost += bytes
			break
		}
	}
	// Share the link knowledge with every flow of this source AS: their
	// endpoint stack sees the same SCMP stream.
	if link != nil {
		if e.OnRevocation != nil {
			e.OnRevocation(f, link.ID)
		}
		for _, g := range e.bySrc[src] {
			if g.state != flowActive {
				continue
			}
			dirty := false
			for _, p := range g.paths {
				if p.revoked {
					continue
				}
				for _, ref := range p.links {
					if ref.Link.ID == link.ID {
						p.revoked = true
						g.sharedDirty = true
						dirty = true
						break
					}
				}
			}
			if dirty || g == f {
				e.noteConnectivity(g)
				e.wakeAt(g, e.cfg.Clock.Now())
			}
		}
		return
	}
	e.noteConnectivity(f)
	e.wakeAt(f, e.cfg.Clock.Now())
}

// expireRevocation lapses one piece of link-failure knowledge at src,
// unless a fresher SCMP refreshed it meanwhile, and re-probes the
// source's active flows so reinstated paths are readopted.
func (e *Engine) expireRevocation(src addr.IA, id topology.LinkID, exp sim.Time) {
	known := e.revoked[src]
	if known == nil || known[id] != exp {
		return
	}
	delete(known, id)
	for _, f := range e.bySrc[src] {
		if f.state == flowActive {
			e.reprobe(f)
		}
	}
}
