package traffic

import (
	"math"
	"math/rand"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/pathdb"
)

// WorkloadParams configures the deterministic workload generator:
// Poisson flow arrivals, heavy-tailed (bounded Pareto) flow sizes and
// Zipf-skewed pair popularity — the stylized facts of Internet traffic the
// paper's workload discussion builds on (§4.1).
type WorkloadParams struct {
	// Flows is how many flows to generate.
	Flows int
	// Pairs are the candidate (src, dst) endpoint pairs.
	Pairs [][2]addr.IA
	// ArrivalRate is the Poisson arrival rate in flows per second.
	ArrivalRate float64
	// MeanSize is the mean flow size in bytes.
	MeanSize float64
	// TailAlpha is the Pareto tail exponent (default 1.5; smaller = heavier).
	TailAlpha float64
	// MaxSizeFactor caps flow sizes at MaxSizeFactor * MeanSize
	// (default 100) so a single elephant cannot dominate the run.
	MaxSizeFactor float64
	// ZipfS, if > 0, skews pair popularity with a Zipf(s) distribution;
	// otherwise pairs are drawn uniformly.
	ZipfS float64
	// Seed drives all randomness; equal seeds yield identical workloads.
	Seed int64
}

// ThinkTimes samples endpoint think times — the closed-loop pause between
// a client receiving a reply and issuing its next request — as an
// exponential distribution with the given mean, floored at min so no
// endpoint busy-loops. The same stylized model as the Poisson flow
// arrivals above, reused by the pathsrv client population.
type ThinkTimes struct {
	rng  *rand.Rand
	mean float64
	min  float64
}

// NewThinkTimes builds a deterministic think-time sampler. A mean <= 0
// defaults to one second; min is clamped into [0, mean].
func NewThinkTimes(mean, min time.Duration, seed int64) *ThinkTimes {
	m := float64(mean)
	if m <= 0 {
		m = float64(time.Second)
	}
	lo := float64(min)
	if lo < 0 {
		lo = 0
	}
	if lo > m {
		lo = m
	}
	return &ThinkTimes{rng: rand.New(rand.NewSource(seed)), mean: m, min: lo}
}

// Next returns the next think time.
func (t *ThinkTimes) Next() time.Duration {
	d := t.rng.ExpFloat64() * t.mean
	if d < t.min {
		d = t.min
	}
	return time.Duration(d)
}

// Generate produces the flow specs of a workload, sorted by arrival time
// (IDs are assigned in arrival order starting at 0).
func Generate(p WorkloadParams) []FlowSpec {
	if p.Flows <= 0 || len(p.Pairs) == 0 {
		return nil
	}
	if p.ArrivalRate <= 0 {
		p.ArrivalRate = 1000
	}
	if p.MeanSize <= 0 {
		p.MeanSize = 256 << 10
	}
	alpha := p.TailAlpha
	if alpha <= 1 {
		alpha = 1.5
	}
	maxFactor := p.MaxSizeFactor
	if maxFactor <= 1 {
		maxFactor = 100
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var ranks *pathdb.ZipfRanks
	if p.ZipfS > 0 {
		ranks = pathdb.NewZipfRanks(len(p.Pairs), p.ZipfS, p.Seed+1)
	}
	// Bounded Pareto: xm chosen so the unbounded mean matches MeanSize.
	xm := p.MeanSize * (alpha - 1) / alpha
	maxSize := p.MeanSize * maxFactor
	specs := make([]FlowSpec, 0, p.Flows)
	t := 0.0
	for i := 0; i < p.Flows; i++ {
		t += rng.ExpFloat64() / p.ArrivalRate
		size := xm / math.Pow(rng.Float64(), 1/alpha)
		if size > maxSize {
			size = maxSize
		}
		var pair [2]addr.IA
		if ranks != nil {
			pair = p.Pairs[ranks.Next()]
		} else {
			pair = p.Pairs[rng.Intn(len(p.Pairs))]
		}
		specs = append(specs, FlowSpec{
			ID:    i,
			Src:   pair[0],
			Dst:   pair[1],
			Start: time.Duration(t * float64(time.Second)),
			Size:  int64(size),
		})
	}
	return specs
}
