package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// Kind enumerates the fault classes.
type Kind int

const (
	// Flap fails a link at the event time and restores it Down later;
	// with Period set it repeats, modelling a flapping link.
	Flap Kind = iota
	// Gray sets a probabilistic drop rate on a link for Down: the link
	// stays up and emits no revocations, it just silently sheds traffic.
	Gray
	// Spike overrides a link's one-way latency with Delay for Down.
	Spike
	// CrashAS stops an AS's control-plane process for Down: it neither
	// handles nor originates messages until it restarts.
	CrashAS
)

func (k Kind) String() string {
	switch k {
	case Flap:
		return "flap"
	case Gray:
		return "gray"
	case Spike:
		return "spike"
	case CrashAS:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one declarative fault. At is the first injection time, Down
// the outage duration. Period > 0 repeats the event every Period for
// injection times strictly before Until (or the schedule End when
// Until is zero). Jitter, if set,
// shifts every injection time by a seeded uniform offset in
// [-Jitter, +Jitter) — occurrences keep their order but lose lockstep
// alignment across links.
type Event struct {
	Kind   Kind
	Link   topology.LinkID // Flap, Gray, Spike
	IA     addr.IA         // CrashAS
	At     sim.Time
	Down   time.Duration
	Period time.Duration
	Until  sim.Time
	Rate   float64       // Gray: drop probability in (0, 1]
	Delay  time.Duration // Spike: temporary one-way latency
	Jitter time.Duration
}

// occurrences expands the event into concrete injection times, drawing
// any jitter from rng (consumed in a fixed order for determinism).
func (ev *Event) occurrences(end sim.Time, rng *rand.Rand) ([]sim.Time, error) {
	if ev.Down <= 0 {
		return nil, fmt.Errorf("%s event needs Down > 0", ev.Kind)
	}
	// A periodic event must heal before it re-fires: otherwise the same
	// event's occurrences overlap and the depth counting that lets
	// *different* events overlap deliberately would mask re-injections.
	if ev.Period > 0 && ev.Down > ev.Period {
		return nil, fmt.Errorf("%s event overlaps itself: Down %v > Period %v", ev.Kind, ev.Down, ev.Period)
	}
	if ev.Kind == Gray && (ev.Rate <= 0 || ev.Rate > 1) {
		return nil, fmt.Errorf("gray event needs Rate in (0, 1], got %g", ev.Rate)
	}
	if ev.Kind == Spike && ev.Delay <= 0 {
		return nil, fmt.Errorf("spike event needs Delay > 0")
	}
	until := ev.Until
	if until == 0 {
		until = end
	}
	var out []sim.Time
	for t := ev.At; ; t += sim.Time(ev.Period) {
		at := t
		if ev.Jitter > 0 {
			at += sim.Time(rng.Int63n(int64(2*ev.Jitter))) - sim.Time(ev.Jitter)
			if at < 0 {
				at = 0
			}
		}
		out = append(out, at)
		if ev.Period <= 0 || t+sim.Time(ev.Period) >= until {
			break
		}
	}
	return out, nil
}

// Schedule is a declarative fault plan: a seed for all randomness, a
// horizon, and the event list. The same schedule always expands to the
// same fault timeline.
type Schedule struct {
	Seed   int64
	End    sim.Time
	Events []Event
}

// String renders the schedule deterministically (events in order).
func (s *Schedule) String() string {
	out := fmt.Sprintf("schedule seed=%d end=%s events=%d", s.Seed, time.Duration(s.End), len(s.Events))
	for _, ev := range s.Events {
		out += "\n  " + ev.String()
	}
	return out
}

func (ev Event) String() string {
	switch ev.Kind {
	case CrashAS:
		return fmt.Sprintf("crash %s at=%s down=%s period=%s", ev.IA, time.Duration(ev.At), ev.Down, ev.Period)
	case Gray:
		return fmt.Sprintf("gray link=%d at=%s down=%s rate=%.3f period=%s", ev.Link, time.Duration(ev.At), ev.Down, ev.Rate, ev.Period)
	case Spike:
		return fmt.Sprintf("spike link=%d at=%s down=%s delay=%s period=%s", ev.Link, time.Duration(ev.At), ev.Down, ev.Delay, ev.Period)
	default:
		return fmt.Sprintf("flap link=%d at=%s down=%s period=%s", ev.Link, time.Duration(ev.At), ev.Down, ev.Period)
	}
}

// CrashStorm builds the standard replica crash-storm schedule: every
// target process crashes for down every period, phases staggered across
// the period so outages roll through the targets continuously instead
// of hitting them in lockstep. Events run from start to end.
func CrashStorm(seed int64, targets []addr.IA, start, end sim.Time, down, period time.Duration) *Schedule {
	sched := &Schedule{Seed: seed, End: end}
	n := len(targets)
	for i, ia := range targets {
		phase := time.Duration(i) * period / time.Duration(n)
		sched.Events = append(sched.Events, Event{
			Kind:   CrashAS,
			IA:     ia,
			At:     start + sim.Time(phase),
			Down:   down,
			Period: period,
			Until:  end - sim.Time(down),
		})
	}
	return sched
}

// FlapChurn builds the standard continuous-churn schedule: n links
// drawn without replacement from links (seeded), each flapping with
// the given down time every period, phases staggered across the period
// so failures arrive continuously rather than in lockstep. Events run
// from start to end.
func FlapChurn(seed int64, links []topology.LinkID, n int, start, end sim.Time, down, period time.Duration) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	pool := append([]topology.LinkID(nil), links...)
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if n > len(pool) {
		n = len(pool)
	}
	sched := &Schedule{Seed: seed, End: end}
	for i := 0; i < n; i++ {
		phase := time.Duration(0)
		if n > 0 {
			phase = time.Duration(i) * period / time.Duration(n)
		}
		sched.Events = append(sched.Events, Event{
			Kind:   Flap,
			Link:   pool[i],
			At:     start + sim.Time(phase),
			Down:   down,
			Period: period,
			Until:  end - sim.Time(down),
		})
	}
	return sched
}
