package chaos

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// ParseSchedule reads a text fault schedule. The format is line based:
//
//	# comment
//	seed 42
//	end 30s
//	flap  <link> at 2s down 1s [period 6s] [until 20s] [jitter 100ms]
//	gray  <link> at 2s down 5s rate 0.3 [period ...] [until ...] [jitter ...]
//	spike <link> at 3s down 2s delay 200ms [...]
//	crash <ia>   at 4s down 3s [...]
//
// <link> is either a numeric link ID or an endpoint pair
// "1-ff00:0:110>1-ff00:0:111" resolved against g (first link between
// the two ASes). g may be nil when only numeric IDs are used.
func ParseSchedule(r io.Reader, g *topology.Graph) (*Schedule, error) {
	sched := &Schedule{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if err := parseLine(sched, fields, g); err != nil {
			return nil, fmt.Errorf("chaos: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if sched.End == 0 {
		return nil, fmt.Errorf("chaos: schedule has no 'end' directive")
	}
	return sched, nil
}

func parseLine(sched *Schedule, fields []string, g *topology.Graph) error {
	switch fields[0] {
	case "seed":
		if len(fields) != 2 {
			return fmt.Errorf("usage: seed <int>")
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", fields[1])
		}
		sched.Seed = v
		return nil
	case "end":
		if len(fields) != 2 {
			return fmt.Errorf("usage: end <duration>")
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil || d <= 0 {
			return fmt.Errorf("bad end %q", fields[1])
		}
		sched.End = sim.Time(d)
		return nil
	case "flap", "gray", "spike", "crash":
		ev, err := parseEvent(fields, g)
		if err != nil {
			return err
		}
		sched.Events = append(sched.Events, *ev)
		return nil
	}
	return fmt.Errorf("unknown directive %q", fields[0])
}

func parseEvent(fields []string, g *topology.Graph) (*Event, error) {
	if len(fields) < 2 {
		return nil, fmt.Errorf("usage: %s <target> at <t> down <d> ...", fields[0])
	}
	ev := &Event{}
	switch fields[0] {
	case "flap":
		ev.Kind = Flap
	case "gray":
		ev.Kind = Gray
	case "spike":
		ev.Kind = Spike
	case "crash":
		ev.Kind = CrashAS
	}
	if ev.Kind == CrashAS {
		ia, err := addr.ParseIA(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad AS %q: %w", fields[1], err)
		}
		if g != nil && g.AS(ia) == nil {
			return nil, fmt.Errorf("unknown AS %s", ia)
		}
		ev.IA = ia
	} else {
		id, err := parseLink(fields[1], g)
		if err != nil {
			return nil, err
		}
		ev.Link = id
	}
	args := fields[2:]
	if len(args)%2 != 0 {
		return nil, fmt.Errorf("dangling argument in %q", strings.Join(fields, " "))
	}
	for i := 0; i < len(args); i += 2 {
		key, val := args[i], args[i+1]
		switch key {
		case "at", "down", "period", "until", "jitter", "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("bad %s %q", key, val)
			}
			switch key {
			case "at":
				ev.At = sim.Time(d)
			case "down":
				ev.Down = d
			case "period":
				ev.Period = d
			case "until":
				ev.Until = sim.Time(d)
			case "jitter":
				ev.Jitter = d
			case "delay":
				ev.Delay = d
			}
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("bad rate %q", val)
			}
			ev.Rate = r
		default:
			return nil, fmt.Errorf("unknown argument %q", key)
		}
	}
	// Validate the assembled event here rather than at Apply time, so a
	// bad schedule file fails with its line number. The same invariants
	// are re-checked in occurrences for programmatic schedules.
	if ev.Down <= 0 {
		return nil, fmt.Errorf("%s event needs down > 0", ev.Kind)
	}
	if ev.Period > 0 && ev.Down > ev.Period {
		return nil, fmt.Errorf("%s event overlaps itself: down %v > period %v", ev.Kind, ev.Down, ev.Period)
	}
	if ev.Kind == Gray && (ev.Rate <= 0 || ev.Rate > 1) {
		return nil, fmt.Errorf("gray event needs rate in (0, 1], got %g", ev.Rate)
	}
	if ev.Kind == Spike && ev.Delay <= 0 {
		return nil, fmt.Errorf("spike event needs delay > 0")
	}
	return ev, nil
}

// parseLink resolves a numeric link ID or an "<ia>><ia>" endpoint pair.
func parseLink(s string, g *topology.Graph) (topology.LinkID, error) {
	if a, b, ok := strings.Cut(s, ">"); ok {
		if g == nil {
			return 0, fmt.Errorf("endpoint link %q needs a topology", s)
		}
		src, err := addr.ParseIA(a)
		if err != nil {
			return 0, fmt.Errorf("bad AS %q: %w", a, err)
		}
		dst, err := addr.ParseIA(b)
		if err != nil {
			return 0, fmt.Errorf("bad AS %q: %w", b, err)
		}
		links := g.LinksBetween(src, dst)
		if len(links) == 0 {
			return 0, fmt.Errorf("no link between %s and %s", src, dst)
		}
		return links[0].ID, nil
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("bad link %q", s)
	}
	id := topology.LinkID(v)
	if g != nil && g.LinkByID(id) == nil {
		return 0, fmt.Errorf("unknown link id %d", v)
	}
	return id, nil
}
