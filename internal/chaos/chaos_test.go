package chaos

import (
	"strings"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// recorder implements FaultTarget and CrashTarget, logging transitions.
type recorder struct {
	failed map[topology.LinkID]bool
	loss   map[topology.LinkID]float64
	delay  map[topology.LinkID]time.Duration
	downAS map[addr.IA]bool
	log    []string
	clock  *sim.Simulator
}

func newRecorder(s *sim.Simulator) *recorder {
	return &recorder{
		failed: map[topology.LinkID]bool{},
		loss:   map[topology.LinkID]float64{},
		delay:  map[topology.LinkID]time.Duration{},
		downAS: map[addr.IA]bool{},
		clock:  s,
	}
}

func (r *recorder) note(what string) {
	r.log = append(r.log, time.Duration(r.clock.Now()).String()+" "+what)
}

func (r *recorder) FailLink(id topology.LinkID)    { r.failed[id] = true; r.note("fail") }
func (r *recorder) RestoreLink(id topology.LinkID) { delete(r.failed, id); r.note("restore") }
func (r *recorder) SetLinkLoss(id topology.LinkID, rate float64) {
	if rate <= 0 {
		delete(r.loss, id)
	} else {
		r.loss[id] = rate
	}
}
func (r *recorder) SetLinkDelay(id topology.LinkID, d time.Duration) {
	if d <= 0 {
		delete(r.delay, id)
	} else {
		r.delay[id] = d
	}
}
func (r *recorder) Crash(ia addr.IA)   { r.downAS[ia] = true; r.note("crash") }
func (r *recorder) Restart(ia addr.IA) { delete(r.downAS, ia); r.note("restart") }

func TestFlapFailsAndRestores(t *testing.T) {
	s := &sim.Simulator{}
	rec := newRecorder(s)
	e := NewEngine(s, rec)
	sched := &Schedule{End: sim.Time(10 * time.Second), Events: []Event{
		{Kind: Flap, Link: 1, At: sim.Time(time.Second), Down: 2 * time.Second},
	}}
	if err := e.Apply(sched); err != nil {
		t.Fatal(err)
	}
	s.At(sim.Time(2*time.Second), func() {
		if !rec.failed[1] {
			t.Error("link 1 should be failed at t=2s")
		}
	})
	s.At(sim.Time(4*time.Second), func() {
		if rec.failed[1] {
			t.Error("link 1 should be restored at t=4s")
		}
	})
	s.Run()
	want := []string{"1s fail", "3s restore"}
	if len(rec.log) != 2 || rec.log[0] != want[0] || rec.log[1] != want[1] {
		t.Errorf("log = %v, want %v", rec.log, want)
	}
}

func TestPeriodicFlapRepeats(t *testing.T) {
	s := &sim.Simulator{}
	rec := newRecorder(s)
	e := NewEngine(s, rec)
	sched := &Schedule{End: sim.Time(20 * time.Second), Events: []Event{
		{Kind: Flap, Link: 3, At: 0, Down: time.Second, Period: 5 * time.Second},
	}}
	if err := e.Apply(sched); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got := e.Injections[Flap]; got != 4 {
		t.Errorf("flap injections = %d, want 4 (t=0,5s,10s,15s)", got)
	}
	if rec.failed[3] {
		t.Error("link must end restored")
	}
}

func TestOverlappingFlapsDepthCounted(t *testing.T) {
	s := &sim.Simulator{}
	rec := newRecorder(s)
	e := NewEngine(s, rec)
	// Two overlapping outages on the same link: [1s,5s) and [2s,3s).
	// The inner restore at 3s must NOT bring the link back up.
	sched := &Schedule{End: sim.Time(10 * time.Second), Events: []Event{
		{Kind: Flap, Link: 7, At: sim.Time(time.Second), Down: 4 * time.Second},
		{Kind: Flap, Link: 7, At: sim.Time(2 * time.Second), Down: time.Second},
	}}
	if err := e.Apply(sched); err != nil {
		t.Fatal(err)
	}
	s.At(sim.Time(4*time.Second), func() {
		if !rec.failed[7] {
			t.Error("link 7 must still be failed at t=4s (outer flap active)")
		}
	})
	s.Run()
	// Exactly one fail/restore edge pair despite two flap events.
	if len(rec.log) != 2 {
		t.Errorf("transitions = %v, want exactly [fail restore]", rec.log)
	}
	if rec.failed[7] {
		t.Error("link must end restored")
	}
}

func TestOverlappingCrashesHealExactlyOnce(t *testing.T) {
	s := &sim.Simulator{}
	rec := newRecorder(s)
	e := NewEngine(s)
	e.AddCrashTarget(rec)
	ia := addr.MustIA(1, 0xff00_0000_0110)
	// Two overlapping outages on the same AS: [1s,5s) and [2s,3s) —
	// exactly the shape a rolling crash storm plus a blackout produces.
	// The inner restart at 3s must NOT bring the process back (crash
	// depth 2), and the whole overlap must yield one crash/restart pair.
	sched := &Schedule{End: sim.Time(10 * time.Second), Events: []Event{
		{Kind: CrashAS, IA: ia, At: sim.Time(time.Second), Down: 4 * time.Second},
		{Kind: CrashAS, IA: ia, At: sim.Time(2 * time.Second), Down: time.Second},
	}}
	if err := e.Apply(sched); err != nil {
		t.Fatal(err)
	}
	s.At(sim.Time(4*time.Second), func() {
		if !rec.downAS[ia] {
			t.Error("AS must still be down at t=4s (outer crash active)")
		}
	})
	s.Run()
	if got := e.Injections[CrashAS]; got != 2 {
		t.Errorf("crash injections = %d, want 2", got)
	}
	want := []string{"1s crash", "5s restart"}
	if len(rec.log) != 2 || rec.log[0] != want[0] || rec.log[1] != want[1] {
		t.Errorf("log = %v, want %v (heal exactly once)", rec.log, want)
	}
	if rec.downAS[ia] {
		t.Error("AS must end restarted")
	}
}

func TestCrashStormStaggeredAndBounded(t *testing.T) {
	ias := []addr.IA{
		addr.MustIA(60000, 1), addr.MustIA(60000, 2), addr.MustIA(60000, 3),
	}
	start, end := sim.Time(2*time.Second), sim.Time(10*time.Second)
	a := CrashStorm(5, ias, start, end, time.Second, 3*time.Second)
	b := CrashStorm(5, ias, start, end, time.Second, 3*time.Second)
	if a.String() != b.String() {
		t.Fatal("CrashStorm not deterministic for same inputs")
	}
	if len(a.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(a.Events))
	}
	seen := map[sim.Time]bool{}
	for _, ev := range a.Events {
		if ev.Kind != CrashAS {
			t.Fatalf("event kind = %v", ev.Kind)
		}
		if seen[ev.At] {
			t.Errorf("two crashes start at %v; phases must be staggered", ev.At)
		}
		seen[ev.At] = true
		if ev.At < start {
			t.Errorf("crash at %v before storm start", ev.At)
		}
		if ev.Until != end-sim.Time(time.Second) {
			t.Errorf("Until = %v, want %v", ev.Until, end-sim.Time(time.Second))
		}
	}
}

func TestGrayAndSpikeStacking(t *testing.T) {
	s := &sim.Simulator{}
	rec := newRecorder(s)
	e := NewEngine(s, rec)
	sched := &Schedule{End: sim.Time(10 * time.Second), Events: []Event{
		{Kind: Gray, Link: 2, At: 0, Down: 6 * time.Second, Rate: 0.1},
		{Kind: Gray, Link: 2, At: sim.Time(time.Second), Down: 2 * time.Second, Rate: 0.5},
		{Kind: Spike, Link: 2, At: 0, Down: 4 * time.Second, Delay: 50 * time.Millisecond},
	}}
	if err := e.Apply(sched); err != nil {
		t.Fatal(err)
	}
	s.At(sim.Time(2*time.Second), func() {
		if rec.loss[2] != 0.5 {
			t.Errorf("loss at t=2s = %g, want 0.5 (strongest active)", rec.loss[2])
		}
		if rec.delay[2] != 50*time.Millisecond {
			t.Errorf("delay at t=2s = %s, want 50ms", rec.delay[2])
		}
	})
	s.At(sim.Time(4*time.Second), func() {
		if rec.loss[2] != 0.1 {
			t.Errorf("loss at t=4s = %g, want 0.1 (inner gray expired)", rec.loss[2])
		}
	})
	s.Run()
	if _, ok := rec.loss[2]; ok {
		t.Error("loss must be cleared at end")
	}
	if _, ok := rec.delay[2]; ok {
		t.Error("delay must be restored at end")
	}
}

func TestCrashRestart(t *testing.T) {
	s := &sim.Simulator{}
	rec := newRecorder(s)
	e := NewEngine(s)
	e.AddCrashTarget(rec)
	ia := addr.MustIA(1, 0xff00_0000_0110)
	sched := &Schedule{End: sim.Time(10 * time.Second), Events: []Event{
		{Kind: CrashAS, IA: ia, At: sim.Time(time.Second), Down: 3 * time.Second},
	}}
	if err := e.Apply(sched); err != nil {
		t.Fatal(err)
	}
	s.At(sim.Time(2*time.Second), func() {
		if !rec.downAS[ia] {
			t.Error("AS should be down at t=2s")
		}
	})
	s.Run()
	if rec.downAS[ia] {
		t.Error("AS must end restarted")
	}
}

func TestScheduleValidation(t *testing.T) {
	s := &sim.Simulator{}
	e := NewEngine(s, newRecorder(s))
	for _, bad := range []Event{
		{Kind: Flap, Link: 1, Down: 0},
		{Kind: Gray, Link: 1, Down: time.Second, Rate: 0},
		{Kind: Gray, Link: 1, Down: time.Second, Rate: 1.5},
		{Kind: Spike, Link: 1, Down: time.Second, Delay: 0},
		// A periodic event whose outage outlasts its period would overlap
		// itself and hide re-injections behind the depth counting.
		{Kind: Flap, Link: 1, Down: 2 * time.Second, Period: time.Second},
		{Kind: CrashAS, IA: addr.MustIA(1, 0xff00_0000_0110), Down: 5 * time.Second, Period: 3 * time.Second},
	} {
		sched := &Schedule{End: sim.Time(time.Second), Events: []Event{bad}}
		if err := e.Apply(sched); err == nil {
			t.Errorf("Apply(%+v) did not fail", bad)
		}
	}
}

func TestJitterDeterministic(t *testing.T) {
	expand := func() []sim.Time {
		s := &sim.Simulator{}
		rec := newRecorder(s)
		e := NewEngine(s, rec)
		sched := &Schedule{Seed: 99, End: sim.Time(60 * time.Second), Events: []Event{
			{Kind: Flap, Link: 1, At: sim.Time(time.Second), Down: time.Second,
				Period: 5 * time.Second, Jitter: 500 * time.Millisecond},
		}}
		if err := e.Apply(sched); err != nil {
			t.Fatal(err)
		}
		var times []sim.Time
		prev := ""
		s.Every(0, 10*time.Millisecond, sim.Time(60*time.Second), func(now sim.Time) {
			state := "up"
			if rec.failed[1] {
				state = "down"
			}
			if state != prev && state == "down" {
				times = append(times, now)
			}
			prev = state
		})
		s.Run()
		return times
	}
	a, b := expand(), expand()
	if len(a) == 0 {
		t.Fatal("no flap transitions observed")
	}
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d transitions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transition %d at %v vs %v: jitter not deterministic", i, a[i], b[i])
		}
	}
}

func TestFlapChurnDeterministicAndStaggered(t *testing.T) {
	links := []topology.LinkID{1, 2, 3, 4, 5, 6, 7, 8}
	a := FlapChurn(7, links, 4, 0, sim.Time(time.Minute), time.Second, 10*time.Second)
	b := FlapChurn(7, links, 4, 0, sim.Time(time.Minute), time.Second, 10*time.Second)
	if a.String() != b.String() {
		t.Fatal("FlapChurn not deterministic for same seed")
	}
	if len(a.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(a.Events))
	}
	seen := map[sim.Time]bool{}
	for _, ev := range a.Events {
		if seen[ev.At] {
			t.Errorf("two flaps start at %v; phases must be staggered", ev.At)
		}
		seen[ev.At] = true
	}
	c := FlapChurn(8, links, 4, 0, sim.Time(time.Minute), time.Second, 10*time.Second)
	if a.String() == c.String() {
		t.Error("different seeds should draw different links")
	}
}

func TestParseSchedule(t *testing.T) {
	g := topology.Demo()
	links := g.Links
	if len(links) == 0 {
		t.Fatal("demo topology has no links")
	}
	l := links[0]
	text := `
# demo schedule
seed 42
end 30s
flap 1 at 2s down 1s period 6s until 20s
gray ` + l.A.String() + ">" + l.B.String() + ` at 3s down 5s rate 0.25
spike 2 at 4s down 2s delay 200ms jitter 50ms
crash ` + l.A.String() + ` at 5s down 3s
`
	sched, err := ParseSchedule(strings.NewReader(text), g)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Seed != 42 || sched.End != sim.Time(30*time.Second) {
		t.Errorf("header = seed %d end %v", sched.Seed, sched.End)
	}
	if len(sched.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(sched.Events))
	}
	if ev := sched.Events[1]; ev.Kind != Gray || ev.Link != l.ID || ev.Rate != 0.25 {
		t.Errorf("gray event = %+v", ev)
	}
	if ev := sched.Events[3]; ev.Kind != CrashAS || ev.IA != l.A {
		t.Errorf("crash event = %+v", ev)
	}

	for _, bad := range []string{
		"end 10s\nflap 0 at 1s down 1s",        // link id 0
		"end 10s\nflap x at 1s down 1s",        // garbage link
		"end 10s\nwarp 1 at 1s down 1s",        // unknown directive
		"end 10s\ngray 1 at 1s down 1s rate x", // bad rate
		"end 10s\nflap 1 at 1s down",           // dangling arg
		"flap 1 at 1s down 1s",                 // missing end
		"end 10s\nflap 9999 at 1s down 1s",     // unknown link id
		"end 10s\ncrash",                       // crash without a target
		"end 10s\ncrash notania at 1s down 1s", // garbage AS
		"end 10s\ncrash 1>2 at 1s down 1s",     // link syntax on a crash
		"end 10s\ncrash 1-10 at 1s down x",     // bad duration
		"end 10s\ncrash 1-10 at 1s halt 1s",    // unknown argument
	} {
		if _, err := ParseSchedule(strings.NewReader(bad), g); err == nil {
			t.Errorf("ParseSchedule(%q) did not fail", bad)
		}
	}
}

// TestParseScheduleRejectsInvalidEvents pins the parse-time event
// validation: schedule files fail with a line number instead of
// surviving until Engine.Apply.
func TestParseScheduleRejectsInvalidEvents(t *testing.T) {
	g := topology.Demo()
	known := g.IAs()[0]
	for _, tc := range []struct {
		name, text, wantErr string
	}{
		{"zero-duration flap", "end 10s\nflap 1 at 1s down 0s", "down > 0"},
		{"negative-duration crash", "end 10s\ncrash " + known.String() + " at 1s down -2s", "down > 0"},
		{"missing down", "end 10s\nflap 1 at 1s", "down > 0"},
		{"self-overlapping flap", "end 30s\nflap 1 at 1s down 5s period 2s", "overlaps itself"},
		{"self-overlapping crash", "end 30s\ncrash " + known.String() + " at 1s down 4s period 3s", "overlaps itself"},
		{"unknown crash target", "end 10s\ncrash 99-ff00:0:999 at 1s down 1s", "unknown AS"},
		{"gray without rate", "end 10s\ngray 1 at 1s down 1s", "rate in (0, 1]"},
		{"gray rate above one", "end 10s\ngray 1 at 1s down 1s rate 1.25", "rate in (0, 1]"},
		{"spike without delay", "end 10s\nspike 1 at 1s down 1s", "delay > 0"},
	} {
		_, err := ParseSchedule(strings.NewReader(tc.text), g)
		if err == nil {
			t.Errorf("%s: ParseSchedule(%q) did not fail", tc.name, tc.text)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("%s: error %q does not carry the line number", tc.name, err)
		}
	}
	// Distinct events may still overlap on the same target — that is the
	// depth-counted feature TestOverlappingFlapsDepthCounted pins, and it
	// must survive the parse-time validation.
	ok := "end 30s\nflap 1 at 1s down 4s\nflap 1 at 2s down 1s"
	if _, err := ParseSchedule(strings.NewReader(ok), g); err != nil {
		t.Errorf("cross-event overlap must stay legal, got %v", err)
	}
	// Unknown crash targets are only detectable with a topology in hand.
	if _, err := ParseSchedule(strings.NewReader("end 10s\ncrash 99-ff00:0:999 at 1s down 1s"), nil); err != nil {
		t.Errorf("crash on nil topology must stay legal, got %v", err)
	}
}
