// Package chaos is a deterministic, seeded fault-injection engine. It
// applies a declarative Schedule of fault events — link flaps, gray
// failures, latency spikes, and per-AS process crashes — to a running
// simulation through a small FaultTarget interface that both
// sim.Network (control plane) and dataplane.Fabric (data plane)
// satisfy, so a single schedule degrades both planes consistently.
//
// Determinism: every injection time (including jitter) is drawn from
// the schedule's seeded RNG when Apply is called, in a fixed order,
// before any event fires. The run itself only executes the precomputed
// plan, so two runs with the same schedule and seed produce identical
// fault timelines regardless of what else the simulation does.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// FaultTarget is the fault surface of one plane of the simulation.
// sim.Network and dataplane.Fabric both implement it.
type FaultTarget interface {
	FailLink(id topology.LinkID)
	RestoreLink(id topology.LinkID)
	SetLinkLoss(id topology.LinkID, rate float64)
	SetLinkDelay(id topology.LinkID, d time.Duration)
}

// CrashTarget can stop and resume per-AS processes (e.g. beacon
// servers): between Crash and Restart the AS neither handles nor
// originates messages.
type CrashTarget interface {
	Crash(ia addr.IA)
	Restart(ia addr.IA)
}

// Engine applies schedules to a set of targets on one simulator.
type Engine struct {
	Sim     *sim.Simulator
	targets []FaultTarget
	crash   []CrashTarget

	// Overlap bookkeeping. Concurrent events on the same link (two
	// overlapping flaps, a flap during a gray window) must not restore
	// the link while another outage is still active, so every fault
	// class is depth-counted and the strongest active degradation wins.
	failDepth  map[topology.LinkID]int
	grayRates  map[topology.LinkID][]float64
	spikes     map[topology.LinkID][]time.Duration
	crashDepth map[addr.IA]int

	// OnFail / OnRestore are invoked when a link transitions to failed /
	// healthy (outermost flap edge only). Experiments hook these to feed
	// beacon-server revocation and to timestamp outages.
	OnFail    func(id topology.LinkID)
	OnRestore func(id topology.LinkID)
	// OnCrash / OnRestart mirror the link hooks for process faults.
	OnCrash   func(ia addr.IA)
	OnRestart func(ia addr.IA)

	// Injections counts fault-plan actions executed so far, by kind.
	Injections map[Kind]uint64
}

// NewEngine builds an engine driving the given fault targets.
func NewEngine(s *sim.Simulator, targets ...FaultTarget) *Engine {
	return &Engine{
		Sim:        s,
		targets:    targets,
		failDepth:  map[topology.LinkID]int{},
		grayRates:  map[topology.LinkID][]float64{},
		spikes:     map[topology.LinkID][]time.Duration{},
		crashDepth: map[addr.IA]int{},
		Injections: map[Kind]uint64{},
	}
}

// SetTelemetry registers the per-kind injection counts as gauge funcs
// (the Injections map is the source of truth; gauge funcs read it at
// export time from serial context).
func (e *Engine) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, k := range []Kind{Flap, Gray, Spike, CrashAS} {
		k := k
		reg.GaugeFunc(fmt.Sprintf(`chaos_injections_total{kind=%q}`, k), func() float64 {
			return float64(e.Injections[k])
		})
	}
}

// trace emits a fault lifecycle event. All chaos actions execute as
// serial simulator events, so direct serial-shard emission keeps
// deterministic order.
func (e *Engine) trace(kind telemetry.EventKind, actor, subject uint64, reason string) {
	e.Sim.Trace(sim.SerialShard, telemetry.Event{
		Kind: kind, Actor: actor, Subject: subject, Reason: reason,
	})
}

// AddTarget registers an additional fault target.
func (e *Engine) AddTarget(t FaultTarget) { e.targets = append(e.targets, t) }

// AddCrashTarget registers a process-fault target.
func (e *Engine) AddCrashTarget(t CrashTarget) { e.crash = append(e.crash, t) }

// action is one precomputed step of the fault plan.
type action struct {
	at sim.Time
	fn func()
}

// Apply expands sched into a concrete fault plan (all times drawn from
// the schedule's seed up front) and registers it with the simulator.
// Call it before running the simulation; occurrences scheduled in the
// simulated past are dropped.
func (e *Engine) Apply(sched *Schedule) error {
	rng := rand.New(rand.NewSource(sched.Seed))
	var plan []action
	for i := range sched.Events {
		ev := &sched.Events[i]
		occ, err := ev.occurrences(sched.End, rng)
		if err != nil {
			return fmt.Errorf("chaos: event %d: %w", i, err)
		}
		for _, at := range occ {
			plan = append(plan, e.planEvent(ev, at)...)
		}
	}
	now := e.Sim.Now()
	for _, a := range plan {
		if a.at < now {
			continue
		}
		e.Sim.At(a.at, a.fn)
	}
	return nil
}

// planEvent expands one occurrence of ev starting at t into its
// inject/recover action pair.
func (e *Engine) planEvent(ev *Event, t sim.Time) []action {
	recover := t + sim.Time(ev.Down)
	switch ev.Kind {
	case Flap:
		id := ev.Link
		return []action{
			{t, func() { e.Injections[Flap]++; e.failLink(id) }},
			{recover, func() { e.restoreLink(id) }},
		}
	case Gray:
		id, rate := ev.Link, ev.Rate
		return []action{
			{t, func() { e.Injections[Gray]++; e.pushGray(id, rate) }},
			{recover, func() { e.popGray(id, rate) }},
		}
	case Spike:
		id, d := ev.Link, ev.Delay
		return []action{
			{t, func() { e.Injections[Spike]++; e.pushSpike(id, d) }},
			{recover, func() { e.popSpike(id, d) }},
		}
	case CrashAS:
		ia := ev.IA
		return []action{
			{t, func() { e.Injections[CrashAS]++; e.crashAS(ia) }},
			{recover, func() { e.restartAS(ia) }},
		}
	}
	return nil
}

func (e *Engine) failLink(id topology.LinkID) {
	e.failDepth[id]++
	if e.failDepth[id] != 1 {
		return
	}
	e.trace(telemetry.FaultApplied, 0, uint64(id), "flap")
	for _, t := range e.targets {
		t.FailLink(id)
	}
	if e.OnFail != nil {
		e.OnFail(id)
	}
}

func (e *Engine) restoreLink(id topology.LinkID) {
	e.failDepth[id]--
	if e.failDepth[id] > 0 {
		return
	}
	delete(e.failDepth, id)
	e.trace(telemetry.FaultHealed, 0, uint64(id), "flap")
	for _, t := range e.targets {
		t.RestoreLink(id)
	}
	if e.OnRestore != nil {
		e.OnRestore(id)
	}
}

// LinkDown reports whether the engine currently holds a link failed.
func (e *Engine) LinkDown(id topology.LinkID) bool { return e.failDepth[id] > 0 }

func (e *Engine) pushGray(id topology.LinkID, rate float64) {
	if len(e.grayRates[id]) == 0 {
		e.trace(telemetry.FaultApplied, 0, uint64(id), "gray")
	}
	e.grayRates[id] = append(e.grayRates[id], rate)
	e.applyGray(id)
}

func (e *Engine) popGray(id topology.LinkID, rate float64) {
	rs := e.grayRates[id]
	for i, r := range rs {
		if r == rate {
			e.grayRates[id] = append(rs[:i], rs[i+1:]...)
			break
		}
	}
	if len(e.grayRates[id]) == 0 {
		delete(e.grayRates, id)
		e.trace(telemetry.FaultHealed, 0, uint64(id), "gray")
	}
	e.applyGray(id)
}

// applyGray installs the strongest active gray rate on a link.
func (e *Engine) applyGray(id topology.LinkID) {
	max := 0.0
	for _, r := range e.grayRates[id] {
		if r > max {
			max = r
		}
	}
	for _, t := range e.targets {
		t.SetLinkLoss(id, max)
	}
}

func (e *Engine) pushSpike(id topology.LinkID, d time.Duration) {
	if len(e.spikes[id]) == 0 {
		e.trace(telemetry.FaultApplied, 0, uint64(id), "spike")
	}
	e.spikes[id] = append(e.spikes[id], d)
	e.applySpike(id)
}

func (e *Engine) popSpike(id topology.LinkID, d time.Duration) {
	ds := e.spikes[id]
	for i, x := range ds {
		if x == d {
			e.spikes[id] = append(ds[:i], ds[i+1:]...)
			break
		}
	}
	if len(e.spikes[id]) == 0 {
		delete(e.spikes, id)
		e.trace(telemetry.FaultHealed, 0, uint64(id), "spike")
	}
	e.applySpike(id)
}

// applySpike installs the largest active delay override on a link;
// SetLinkDelay(0) restores the default latency.
func (e *Engine) applySpike(id topology.LinkID) {
	var max time.Duration
	for _, d := range e.spikes[id] {
		if d > max {
			max = d
		}
	}
	// Delay overrides are a transport property; apply once on the first
	// target that carries it (all targets share the underlying network
	// in practice, and re-applying the same override is idempotent).
	for _, t := range e.targets {
		t.SetLinkDelay(id, max)
	}
}

func (e *Engine) crashAS(ia addr.IA) {
	e.crashDepth[ia]++
	if e.crashDepth[ia] != 1 {
		return
	}
	e.trace(telemetry.FaultApplied, ia.Uint64(), 0, "crash")
	for _, t := range e.crash {
		t.Crash(ia)
	}
	if e.OnCrash != nil {
		e.OnCrash(ia)
	}
}

func (e *Engine) restartAS(ia addr.IA) {
	e.crashDepth[ia]--
	if e.crashDepth[ia] > 0 {
		return
	}
	delete(e.crashDepth, ia)
	e.trace(telemetry.FaultHealed, ia.Uint64(), 0, "crash")
	for _, t := range e.crash {
		t.Restart(ia)
	}
	if e.OnRestart != nil {
		e.OnRestart(ia)
	}
}

// Summary renders the injection counters deterministically.
func (e *Engine) Summary() string {
	return fmt.Sprintf("chaos: flaps=%d gray=%d spikes=%d crashes=%d",
		e.Injections[Flap], e.Injections[Gray], e.Injections[Spike], e.Injections[CrashAS])
}
