package chaos

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

// AppendState serializes the engine's fault bookkeeping in canonical
// order: overlap depth counters per link and AS, the active gray-rate and
// delay-spike stacks (in push order — pop removes the first matching
// value, so order is behavior), and the per-kind injection counts.
//
// A resumed run re-derives the fault plan itself by re-running Apply with
// the same schedule (the plan is a pure function of the schedule's seed);
// this state carries only what the surviving recover actions need to
// unwind correctly across the checkpoint boundary.
func (e *Engine) AppendState(dst []byte) []byte {
	linkKeys := func(n int) []topology.LinkID { return make([]topology.LinkID, 0, n) }

	ids := linkKeys(len(e.failDepth))
	for id := range e.failDepth {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint32(dst, uint32(id))
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.failDepth[id]))
	}

	ids = linkKeys(len(e.grayRates))
	for id := range e.grayRates {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		rates := e.grayRates[id]
		dst = binary.BigEndian.AppendUint32(dst, uint32(id))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(rates)))
		for _, r := range rates {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r))
		}
	}

	ids = linkKeys(len(e.spikes))
	for id := range e.spikes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		ds := e.spikes[id]
		dst = binary.BigEndian.AppendUint32(dst, uint32(id))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(ds)))
		for _, d := range ds {
			dst = binary.BigEndian.AppendUint64(dst, uint64(d))
		}
	}

	ias := make([]addr.IA, 0, len(e.crashDepth))
	for ia := range e.crashDepth {
		ias = append(ias, ia)
	}
	sort.Slice(ias, func(i, j int) bool { return ias[i].Less(ias[j]) })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ias)))
	for _, ia := range ias {
		dst = binary.BigEndian.AppendUint64(dst, ia.Uint64())
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.crashDepth[ia]))
	}

	kinds := make([]int, 0, len(e.Injections))
	for k := range e.Injections {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(kinds)))
	for _, k := range kinds {
		dst = binary.BigEndian.AppendUint32(dst, uint32(k))
		dst = binary.BigEndian.AppendUint64(dst, e.Injections[Kind(k)])
	}
	return dst
}

// RestoreState rebuilds the bookkeeping serialized by AppendState on a
// freshly constructed engine. Call it before Apply, which registers the
// surviving fault-plan actions.
func (e *Engine) RestoreState(b []byte) error {
	off := 0
	fail := func(what string) error {
		return fmt.Errorf("chaos: engine state truncated in %s at offset %d", what, off)
	}
	u32 := func() (uint32, bool) {
		if off+4 > len(b) {
			return 0, false
		}
		v := binary.BigEndian.Uint32(b[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(b) {
			return 0, false
		}
		v := binary.BigEndian.Uint64(b[off:])
		off += 8
		return v, true
	}

	n, ok := u32()
	if !ok {
		return fail("failDepth")
	}
	for i := uint32(0); i < n; i++ {
		id, ok1 := u32()
		depth, ok2 := u32()
		if !ok1 || !ok2 {
			return fail("failDepth")
		}
		e.failDepth[topology.LinkID(id)] = int(depth)
	}

	if n, ok = u32(); !ok {
		return fail("grayRates")
	}
	for i := uint32(0); i < n; i++ {
		id, ok1 := u32()
		m, ok2 := u32()
		if !ok1 || !ok2 {
			return fail("grayRates")
		}
		rates := make([]float64, m)
		for j := range rates {
			bits, ok := u64()
			if !ok {
				return fail("grayRates")
			}
			rates[j] = math.Float64frombits(bits)
		}
		e.grayRates[topology.LinkID(id)] = rates
	}

	if n, ok = u32(); !ok {
		return fail("spikes")
	}
	for i := uint32(0); i < n; i++ {
		id, ok1 := u32()
		m, ok2 := u32()
		if !ok1 || !ok2 {
			return fail("spikes")
		}
		ds := make([]time.Duration, m)
		for j := range ds {
			v, ok := u64()
			if !ok {
				return fail("spikes")
			}
			ds[j] = time.Duration(v)
		}
		e.spikes[topology.LinkID(id)] = ds
	}

	if n, ok = u32(); !ok {
		return fail("crashDepth")
	}
	for i := uint32(0); i < n; i++ {
		ia, ok1 := u64()
		depth, ok2 := u32()
		if !ok1 || !ok2 {
			return fail("crashDepth")
		}
		e.crashDepth[addr.IAFromUint64(ia)] = int(depth)
	}

	if n, ok = u32(); !ok {
		return fail("injections")
	}
	for i := uint32(0); i < n; i++ {
		k, ok1 := u32()
		count, ok2 := u64()
		if !ok1 || !ok2 {
			return fail("injections")
		}
		e.Injections[Kind(k)] = count
	}
	if off != len(b) {
		return fmt.Errorf("chaos: engine state has %d trailing bytes", len(b)-off)
	}
	return nil
}
