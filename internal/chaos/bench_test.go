package chaos

import (
	"testing"
	"time"

	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// BenchmarkFlapTick measures one fail/restore edge pair through the
// depth-counting engine — the per-occurrence cost of a flapping link.
func BenchmarkFlapTick(b *testing.B) {
	s := &sim.Simulator{}
	rec := newRecorder(s)
	e := NewEngine(s, rec)
	id := topology.LinkID(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.failLink(id)
		e.restoreLink(id)
	}
}

type benchMsg struct{}

func (benchMsg) WireLen() int { return 64 }

// BenchmarkGrayDropDecision measures the per-message cost of the
// gray-failure drop decision inside sim.Network.Send's hot path. The
// rate is 1.0 so every message takes the drop branch and nothing piles
// up in the event heap.
func BenchmarkGrayDropDecision(b *testing.B) {
	g := topology.Demo()
	s := &sim.Simulator{}
	n := sim.NewNetwork(s, g, time.Millisecond)
	n.SeedLoss(1)
	link := g.Links[0]
	n.SetLinkLoss(link.ID, 1.0)
	msg := benchMsg{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(link.A, link, msg)
	}
	if n.DroppedByLoss != uint64(b.N) {
		b.Fatalf("dropped %d of %d", n.DroppedByLoss, b.N)
	}
}

// BenchmarkScheduleApply measures expanding a 32-link churn schedule
// into its concrete fault plan.
func BenchmarkScheduleApply(b *testing.B) {
	links := make([]topology.LinkID, 64)
	for i := range links {
		links[i] = topology.LinkID(i + 1)
	}
	sched := FlapChurn(1, links, 32, 0, sim.Time(10*time.Minute), 2*time.Second, 30*time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &sim.Simulator{}
		e := NewEngine(s, newRecorder(s))
		if err := e.Apply(sched); err != nil {
			b.Fatal(err)
		}
	}
}
