package sig

import (
	"net/netip"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/combinator"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

var (
	a2 = addr.MustIA(1, 0xff00_0000_0102)
	a4 = addr.MustIA(1, 0xff00_0000_0104)
	a6 = addr.MustIA(1, 0xff00_0000_0106)
)

func TestASMapLongestPrefix(t *testing.T) {
	var m ASMap
	m.Add(netip.MustParsePrefix("10.0.0.0/8"), a4)
	m.Add(netip.MustParsePrefix("10.1.0.0/16"), a6)
	if ia, ok := m.Lookup(netip.MustParseAddr("10.1.2.3")); !ok || ia != a6 {
		t.Errorf("LPM = %v %v, want %v", ia, ok, a6)
	}
	if ia, ok := m.Lookup(netip.MustParseAddr("10.9.9.9")); !ok || ia != a4 {
		t.Errorf("fallback = %v %v, want %v", ia, ok, a4)
	}
	if _, ok := m.Lookup(netip.MustParseAddr("192.168.1.1")); ok {
		t.Error("unmapped address resolved")
	}
	if m.Len() != 2 {
		t.Errorf("len = %d", m.Len())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []IPPacket{
		{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.1.0.1"), Payload: []byte("v4")},
		{Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("2001:db8::2"), Payload: []byte("v6 payload")},
		{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.1.0.1")},
	}
	for _, c := range cases {
		back, err := decode(c.encode())
		if err != nil {
			t.Fatal(err)
		}
		if back.Src != c.Src || back.Dst != c.Dst || string(back.Payload) != string(c.Payload) {
			t.Errorf("round trip: %+v vs %+v", back, c)
		}
	}
	if _, err := decode([]byte{1, 2, 3}); err == nil {
		t.Error("truncated decode must fail")
	}
	if _, err := decode(make([]byte, 36)); err == nil {
		// length field says 0 but buffer has 36 >= 35: actually valid.
		_ = err
	}
	long := cases[0].encode()
	long[33] = 0xff // claim longer payload than present
	long[34] = 0xff
	if _, err := decode(long); err == nil {
		t.Error("over-long payload length must fail")
	}
}

func TestIPPacketWireLen(t *testing.T) {
	v4 := IPPacket{Src: netip.MustParseAddr("1.1.1.1"), Dst: netip.MustParseAddr("2.2.2.2"), Payload: make([]byte, 10)}
	if v4.WireLen() != 30 {
		t.Errorf("v4 wire len = %d", v4.WireLen())
	}
	v6 := IPPacket{Src: netip.MustParseAddr("::1"), Dst: netip.MustParseAddr("::2"), Payload: make([]byte, 10)}
	if v6.WireLen() != 50 {
		t.Errorf("v6 wire len = %d", v6.WireLen())
	}
}

// sigEnv wires two SIGs (A-6 and A-4) over real beaconed paths.
type sigEnv struct {
	s          *sim.Simulator
	fabric     *dataplane.Fabric
	gwA6, gwA4 *Gateway
}

func newSigEnv(t *testing.T) *sigEnv {
	t.Helper()
	topo := topology.Demo()
	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		t.Fatal(err)
	}
	cfg := beacon.DefaultRunConfig(topo, beacon.IntraMode, core.NewBaseline(5), 20)
	cfg.Duration = time.Hour
	cfg.Infra = infra
	run, err := beacon.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	term := func(origin, dst addr.IA) []*seg.PCB {
		var out []*seg.PCB
		for _, e := range run.Servers[dst].Store().Entries(run.End, origin) {
			tp, err := e.PCB.Extend(infra.SignerFor(dst), addr.IA{}, e.Ingress, 0, nil, 1472)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tp)
		}
		return out
	}
	paths := func(src, dst addr.IA) []*dataplane.FwdPath {
		cands := combinator.AllPaths(term(a2, src), nil, term(a2, dst))
		var out []*dataplane.FwdPath
		for _, c := range cands {
			fp, err := dataplane.Authorize(c, infra.ForwardingKey)
			if err == nil {
				out = append(out, fp)
			}
		}
		return out
	}
	s := &sim.Simulator{}
	net := sim.NewNetwork(s, topo, time.Millisecond)
	fab := dataplane.NewFabric(net, infra.ForwardingKey)

	var m ASMap
	m.Add(netip.MustParsePrefix("10.6.0.0/16"), a6)
	m.Add(netip.MustParsePrefix("10.4.0.0/16"), a4)

	gwA6 := NewGateway(fab, addr.HostIP4(a6, 10, 6, 0, 1), CPE, &m, func(dst addr.IA) []*dataplane.FwdPath {
		return paths(a6, dst)
	})
	gwA4 := NewGateway(fab, addr.HostIP4(a4, 10, 4, 0, 1), CPE, &m, func(dst addr.IA) []*dataplane.FwdPath {
		return paths(a4, dst)
	})
	return &sigEnv{s: s, fabric: fab, gwA6: gwA6, gwA4: gwA4}
}

func TestGatewayTunnel(t *testing.T) {
	env := newSigEnv(t)
	var got IPPacket
	env.gwA4.OnDeliverIP(func(p IPPacket) { got = p })

	ip := IPPacket{
		Src:     netip.MustParseAddr("10.6.0.99"),
		Dst:     netip.MustParseAddr("10.4.0.42"),
		Payload: []byte("legacy traffic"),
	}
	if err := env.gwA6.HandleIP(ip); err != nil {
		t.Fatal(err)
	}
	env.s.Run()
	if string(got.Payload) != "legacy traffic" {
		t.Fatalf("decapsulated = %+v", got)
	}
	if got.Src != ip.Src || got.Dst != ip.Dst {
		t.Error("addresses corrupted in tunnel")
	}
	if env.gwA6.Encapsulated != 1 || env.gwA4.Decapsulated != 1 {
		t.Errorf("stats: enc=%d dec=%d", env.gwA6.Encapsulated, env.gwA4.Decapsulated)
	}
	if env.gwA6.PerDstAS[a4] != 1 {
		t.Error("per-destination accounting missing")
	}
}

func TestGatewayErrors(t *testing.T) {
	env := newSigEnv(t)
	// Unmapped destination.
	err := env.gwA6.HandleIP(IPPacket{
		Src: netip.MustParseAddr("10.6.0.1"),
		Dst: netip.MustParseAddr("192.168.0.1"),
	})
	if err == nil || env.gwA6.NoMapping != 1 {
		t.Error("unmapped destination must fail")
	}
	// Local delivery bypasses SCION.
	delivered := false
	env.gwA6.OnDeliverIP(func(IPPacket) { delivered = true })
	if err := env.gwA6.HandleIP(IPPacket{
		Src: netip.MustParseAddr("10.6.0.1"),
		Dst: netip.MustParseAddr("10.6.0.2"),
	}); err != nil {
		t.Fatal(err)
	}
	if !delivered || env.gwA6.Encapsulated != 0 {
		t.Error("intra-AS packet must be delivered locally")
	}
	// No-path destination.
	var m ASMap
	m.Add(netip.MustParsePrefix("0.0.0.0/0"), addr.MustIA(3, 0xff00_0000_0305))
	gw := NewGateway(env.fabric, addr.HostIP4(a6, 1, 1, 1, 1), CPE, &m, func(addr.IA) []*dataplane.FwdPath { return nil })
	if err := gw.HandleIP(IPPacket{Src: netip.MustParseAddr("1.1.1.1"), Dst: netip.MustParseAddr("2.2.2.2")}); err == nil || gw.NoPath != 1 {
		t.Error("pathless destination must fail")
	}
}

func TestCarrierGradeAggregation(t *testing.T) {
	env := newSigEnv(t)
	// Reconfigure A-6's gateway as carrier-grade: many customer sources
	// aggregated toward the same remote AS.
	env.gwA6.Mode = CarrierGrade
	var got int
	env.gwA4.OnDeliverIP(func(IPPacket) { got++ })
	for i := 0; i < 5; i++ {
		err := env.gwA6.HandleIP(IPPacket{
			Src:     netip.AddrFrom4([4]byte{10, 6, byte(i), 1}),
			Dst:     netip.MustParseAddr("10.4.0.42"),
			Payload: []byte{byte(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	env.s.Run()
	if got != 5 {
		t.Errorf("delivered = %d, want 5", got)
	}
	if env.gwA6.PerDstAS[a4] != 5 {
		t.Errorf("aggregated count = %d", env.gwA6.PerDstAS[a4])
	}
	if CarrierGrade.String() != "carrier-grade" || CPE.String() != "cpe" {
		t.Error("mode strings")
	}
}

func TestConnectionsSaved(t *testing.T) {
	leased, scion := ConnectionsSaved(20, 3)
	if leased != 60 || scion != 23 {
		t.Errorf("20x3: leased=%d scion=%d", leased, scion)
	}
}
