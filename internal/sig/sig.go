// Package sig implements the SCION-IP Gateway (SIG) of paper §3.4: it
// encapsulates legacy IP packets into SCION packets so end domains can use
// the SCION network without touching hosts or applications. The ASMap
// table maps IP prefixes to SCION ASes; the gateway resolves the
// destination AS, fetches a forwarding path, and tunnels the IP packet as
// SCION payload. A corresponding SIG at the destination decapsulates.
//
// Both deployment variants are covered: the customer-premise SIG (one
// gateway per end-domain AS, Case b) and the carrier-grade SIG (one
// provider-operated gateway aggregating many legacy customers, Case c).
package sig

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"

	"scionmpr/internal/addr"
	"scionmpr/internal/dataplane"
)

// ASMap maps IP address space to SCION ASes with longest-prefix-match
// semantics (the SIG's ASMap table, §3.4).
type ASMap struct {
	entries []mapEntry
	sorted  bool
}

type mapEntry struct {
	prefix netip.Prefix
	ia     addr.IA
}

// Add inserts a prefix mapping. Overlapping prefixes are allowed; Lookup
// picks the longest match.
func (m *ASMap) Add(prefix netip.Prefix, ia addr.IA) {
	m.entries = append(m.entries, mapEntry{prefix: prefix.Masked(), ia: ia})
	m.sorted = false
}

// Lookup resolves an IP address to its SCION AS.
func (m *ASMap) Lookup(ip netip.Addr) (addr.IA, bool) {
	if !m.sorted {
		sort.SliceStable(m.entries, func(i, j int) bool {
			return m.entries[i].prefix.Bits() > m.entries[j].prefix.Bits()
		})
		m.sorted = true
	}
	for _, e := range m.entries {
		if e.prefix.Contains(ip) {
			return e.ia, true
		}
	}
	return addr.IA{}, false
}

// Len returns the number of mappings.
func (m *ASMap) Len() int { return len(m.entries) }

// IPPacket is a legacy IP packet entering or leaving the SCION network.
type IPPacket struct {
	Src, Dst netip.Addr
	Payload  []byte
}

// WireLen approximates the legacy packet size (IPv4/IPv6 header + payload).
func (p IPPacket) WireLen() int {
	hdr := 20
	if p.Dst.Is6() {
		hdr = 40
	}
	return hdr + len(p.Payload)
}

// encode serializes an IP packet into a SCION payload.
func (p IPPacket) encode() []byte {
	src := p.Src.As16()
	dst := p.Dst.As16()
	out := make([]byte, 0, 1+16+16+2+len(p.Payload))
	version := byte(4)
	if p.Dst.Is6() {
		version = 6
	}
	out = append(out, version)
	out = append(out, src[:]...)
	out = append(out, dst[:]...)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(p.Payload)))
	out = append(out, l[:]...)
	out = append(out, p.Payload...)
	return out
}

func decode(b []byte) (IPPacket, error) {
	if len(b) < 35 {
		return IPPacket{}, fmt.Errorf("sig: truncated encapsulation (%d bytes)", len(b))
	}
	var src, dst [16]byte
	copy(src[:], b[1:17])
	copy(dst[:], b[17:33])
	n := int(binary.BigEndian.Uint16(b[33:35]))
	if len(b) < 35+n {
		return IPPacket{}, fmt.Errorf("sig: payload truncated")
	}
	s, d := netip.AddrFrom16(src), netip.AddrFrom16(dst)
	if b[0] == 4 {
		s, d = s.Unmap(), d.Unmap()
	}
	return IPPacket{Src: s, Dst: d, Payload: b[35 : 35+n]}, nil
}

// PathProvider supplies forwarding paths toward a destination AS (wired
// to the path servers and combinator in a full deployment).
type PathProvider func(dst addr.IA) []*dataplane.FwdPath

// DeliverIP receives decapsulated legacy packets on the far side.
type DeliverIP func(pkt IPPacket)

// Mode distinguishes the deployment cases of §3.4.
type Mode int

const (
	// CPE is the customer-premise SIG of Case b: one gateway per
	// SCION-enabled end-domain AS.
	CPE Mode = iota
	// CarrierGrade is the provider-operated SIG of Case c, aggregating
	// traffic of many SCION-unaware customers.
	CarrierGrade
)

func (m Mode) String() string {
	if m == CPE {
		return "cpe"
	}
	return "carrier-grade"
}

// Gateway is one SIG instance.
type Gateway struct {
	Local  addr.IA
	Host   addr.Host
	Mode   Mode
	Map    *ASMap
	Paths  PathProvider
	fabric *dataplane.Fabric

	deliver DeliverIP

	// Stats: per-destination-AS encapsulated packet counts (aggregation
	// visibility for the carrier-grade case) and error counters.
	PerDstAS          map[addr.IA]uint64
	Encapsulated      uint64
	Decapsulated      uint64
	NoMapping, NoPath uint64
	MalformedDecaps   uint64
}

// NewGateway installs a SIG at host's AS, registering it as the AS's
// packet deliverer on the fabric.
func NewGateway(f *dataplane.Fabric, host addr.Host, mode Mode, asmap *ASMap, paths PathProvider) *Gateway {
	g := &Gateway{
		Local:    host.IA,
		Host:     host,
		Mode:     mode,
		Map:      asmap,
		Paths:    paths,
		fabric:   f,
		PerDstAS: map[addr.IA]uint64{},
	}
	f.OnDeliver(host.IA, g.handleSCION)
	return g
}

// OnDeliverIP installs the legacy-side handler for decapsulated packets.
func (g *Gateway) OnDeliverIP(fn DeliverIP) { g.deliver = fn }

// HandleIP processes an outgoing legacy IP packet: resolve the remote AS
// via the ASMap, pick a path, encapsulate, and inject into the SCION
// network (paper §3.4).
func (g *Gateway) HandleIP(pkt IPPacket) error {
	dstIA, ok := g.Map.Lookup(pkt.Dst)
	if !ok {
		g.NoMapping++
		return fmt.Errorf("sig: no ASMap entry for %s", pkt.Dst)
	}
	if dstIA == g.Local {
		// Local delivery without encapsulation.
		if g.deliver != nil {
			g.deliver(pkt)
		}
		return nil
	}
	paths := g.Paths(dstIA)
	if len(paths) == 0 {
		g.NoPath++
		return fmt.Errorf("sig: no path to %s", dstIA)
	}
	sp := &dataplane.Packet{
		Src:     g.Host,
		Dst:     addr.HostSvc(dstIA, addr.SvcSG),
		Path:    paths[0],
		Payload: pkt.encode(),
	}
	if err := g.fabric.Inject(sp); err != nil {
		return err
	}
	g.Encapsulated++
	g.PerDstAS[dstIA]++
	return nil
}

// handleSCION decapsulates an arriving SCION packet back into an IP
// packet and hands it to the legacy network.
func (g *Gateway) handleSCION(pkt *dataplane.Packet) {
	ip, err := decode(pkt.Payload)
	if err != nil {
		g.MalformedDecaps++
		return
	}
	g.Decapsulated++
	if g.deliver != nil {
		g.deliver(ip)
	}
}

// ConnectionsSaved quantifies the leased-line replacement incentive of
// paper §3.1: connecting n branches with k data centers needs n*k leased
// lines but only n+k SCION connections.
func ConnectionsSaved(branches, dataCenters int) (leased, scion int) {
	return branches * dataCenters, branches + dataCenters
}
