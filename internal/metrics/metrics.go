// Package metrics provides the statistical helpers behind the paper's
// figures: empirical CDFs, quantiles, geometric means, relative-overhead
// series, and plain-text renderings of CDF curves and tables suitable for
// terminal output and EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float samples.
type CDF struct {
	xs []float64 // sorted
}

// NewCDF builds a CDF; the input slice is copied. NaN samples are
// dropped — they carry no ordering information, and a NaN breaks the
// sortedness invariant every query relies on (sort.Float64s leaves NaNs
// in unspecified positions). ±Inf samples are kept and sort to the
// extremes.
func NewCDF(samples []float64) *CDF {
	xs := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			xs = append(xs, v)
		}
	}
	sort.Float64s(xs)
	return &CDF{xs: xs}
}

// Len returns the sample count (after NaN filtering).
func (c *CDF) Len() int { return len(c.xs) }

// At returns the empirical P(X <= x). On an empty distribution every
// probability is 0 (no sample is <= x); At(NaN) is NaN.
func (c *CDF) At(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	if len(c.xs) == 0 {
		return 0
	}
	if math.IsInf(x, 1) {
		return 1 // every sample is <= +Inf, including +Inf samples
	}
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) by the nearest-rank
// convention: the smallest stored sample x such that at least ⌈q·n⌉
// samples are <= x, i.e. xs[⌈q·n⌉-1] of the sorted samples. The result
// is always an actual sample (no interpolation), q <= 0 yields the
// minimum and q >= 1 the maximum. An empty distribution and Quantile(NaN)
// yield NaN.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return c.xs[0]
	}
	if q >= 1 {
		return c.xs[len(c.xs)-1]
	}
	i := int(math.Ceil(q*float64(len(c.xs)))) - 1
	if i < 0 {
		i = 0
	}
	return c.xs[i]
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the arithmetic mean.
func (c *CDF) Mean() float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range c.xs {
		s += x
	}
	return s / float64(len(c.xs))
}

// GeoMean returns the geometric mean of positive samples (zero/negative
// samples are clamped to a small epsilon to stay defined).
func GeoMean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range samples {
		if x < 1e-12 {
			x = 1e-12
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(samples)))
}

// Relative divides each element of num by the matching element of den.
// Zero denominators yield +Inf entries, which quantiles handle naturally.
func Relative(num, den []float64) []float64 {
	n := len(num)
	if len(den) < n {
		n = len(den)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if den[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = num[i] / den[i]
	}
	return out
}

// Floats converts an integer sample set.
func Floats[T ~int | ~int64 | ~uint64 | ~float64](in []T) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

// Series is a named CDF for figure rendering.
type Series struct {
	Name string
	CDF  *CDF
}

// FprintCDFs renders the series as a quantile table: one row per
// quantile, one column per series — the textual equivalent of the paper's
// CDF figures.
func FprintCDFs(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "== %s ==\n", title)
	if len(series) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	fmt.Fprintf(w, "%-8s", "quantile")
	for _, s := range series {
		fmt.Fprintf(w, " %22s", truncate(s.Name, 22))
	}
	fmt.Fprintln(w)
	for _, q := range []float64{0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 1.00} {
		fmt.Fprintf(w, "p%-7.0f", q*100)
		for _, s := range series {
			fmt.Fprintf(w, " %22s", fmtVal(s.CDF.Quantile(q)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-8s", "mean")
	for _, s := range series {
		fmt.Fprintf(w, " %22s", fmtVal(s.CDF.Mean()))
	}
	fmt.Fprintln(w)
}

func fmtVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "inf"
	case v != 0 && (math.Abs(v) < 0.01 || math.Abs(v) >= 1e6):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Table is a simple aligned text table for Table 1 style output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// FprintHistogram renders an ASCII bar histogram of the samples with the
// given number of equal-width buckets — the terminal rendering used by
// cmd/beaconsim for bandwidth distributions.
func FprintHistogram(w io.Writer, title string, samples []float64, buckets int) {
	fmt.Fprintf(w, "== %s ==\n", title)
	if len(samples) == 0 || buckets < 1 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	c := NewCDF(samples)
	lo, hi := c.Min(), c.Max()
	if hi == lo {
		fmt.Fprintf(w, "all %d samples = %s\n", len(samples), fmtVal(lo))
		return
	}
	width := (hi - lo) / float64(buckets)
	counts := make([]int, buckets)
	for _, x := range samples {
		i := int((x - lo) / width)
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	maxCount := 0
	for _, n := range counts {
		if n > maxCount {
			maxCount = n
		}
	}
	const barWidth = 40
	for i, n := range counts {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", n*barWidth/maxCount)
		}
		fmt.Fprintf(w, "[%10s, %10s) %5d %s\n",
			fmtVal(lo+float64(i)*width), fmtVal(lo+float64(i+1)*width), n, bar)
	}
}

// FmtBytes renders a byte count with a binary unit prefix (B, KiB, MiB,
// GiB, TiB), the format used by traffic summaries.
func FmtBytes(v float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for v >= 1024 && i < len(units)-1 {
		v /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%.0f %s", v, units[i])
	}
	return fmt.Sprintf("%.2f %s", v, units[i])
}

// FmtRate renders a byte rate as bytes-per-second with a binary prefix.
func FmtRate(v float64) string { return FmtBytes(v) + "/s" }

// OrderOfMagnitude returns log10(a/b), the "orders of magnitude" language
// the paper uses for overhead comparisons.
func OrderOfMagnitude(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return math.NaN()
	}
	return math.Log10(a / b)
}
