package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Len() != 4 {
		t.Fatal("len")
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v", got)
	}
	if c.Min() != 1 || c.Max() != 4 || c.Median() != 2 {
		t.Errorf("min/max/median = %v/%v/%v", c.Min(), c.Max(), c.Median())
	}
	if c.Mean() != 2.5 {
		t.Errorf("mean = %v", c.Mean())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.At(math.Inf(1)) != 0 {
		t.Error("empty At must be 0 everywhere")
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Error("empty quantile/mean must be NaN")
	}
	if !math.IsNaN(c.Quantile(0)) || !math.IsNaN(c.Quantile(1)) {
		t.Error("empty min/max quantiles must be NaN")
	}
}

func TestCDFDropsNaNSamples(t *testing.T) {
	c := NewCDF([]float64{3, math.NaN(), 1, math.NaN(), 2})
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (NaNs dropped)", c.Len())
	}
	if c.Min() != 1 || c.Max() != 3 || c.Median() != 2 {
		t.Errorf("min/max/median = %v/%v/%v", c.Min(), c.Max(), c.Median())
	}
	// Quantiles must stay monotone and well-defined at every q — the
	// pre-filter failure mode was NaNs landing mid-slice and breaking
	// the binary search and rank lookups.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := c.Quantile(q)
		if math.IsNaN(v) || v < prev {
			t.Fatalf("Quantile(%.2f) = %v after %v", q, v, prev)
		}
		prev = v
	}
	// All-NaN input behaves exactly like empty input.
	allNaN := NewCDF([]float64{math.NaN(), math.NaN()})
	if allNaN.Len() != 0 || allNaN.At(1) != 0 || !math.IsNaN(allNaN.Quantile(0.5)) {
		t.Error("all-NaN input must behave as empty")
	}
}

func TestCDFAtSpecialInputs(t *testing.T) {
	c := NewCDF([]float64{1, 2, math.Inf(1)})
	if !math.IsNaN(c.At(math.NaN())) {
		t.Error("At(NaN) must be NaN")
	}
	if got := c.At(math.Inf(1)); got != 1 {
		t.Errorf("At(+Inf) = %v, want 1 (counts +Inf samples)", got)
	}
	if got := c.At(math.Inf(-1)); got != 0 {
		t.Errorf("At(-Inf) = %v, want 0", got)
	}
	if got := c.At(2); got != 2.0/3.0 {
		t.Errorf("At(2) = %v, want 2/3", got)
	}
	if !math.IsNaN(c.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) must be NaN")
	}
}

// TestQuantileNearestRank pins the documented convention: the result is
// sample ⌈q·n⌉-1 of the sorted slice, always an actual sample.
func TestQuantileNearestRank(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.1, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20},
		{0.51, 30}, {0.75, 30}, {0.76, 40}, {1, 40},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if gm := GeoMean([]float64{1, 100}); math.Abs(gm-10) > 1e-9 {
		t.Errorf("geomean = %v", gm)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty geomean must be NaN")
	}
	if gm := GeoMean([]float64{0, 100}); gm <= 0 {
		t.Error("zero-clamped geomean must stay positive")
	}
}

func TestRelative(t *testing.T) {
	r := Relative([]float64{10, 20, 5}, []float64{2, 0, 10})
	if r[0] != 5 || !math.IsInf(r[1], 1) || r[2] != 0.5 {
		t.Errorf("relative = %v", r)
	}
	if got := Relative([]float64{1, 2, 3}, []float64{1}); len(got) != 1 {
		t.Error("length mismatch not truncated")
	}
}

func TestFloats(t *testing.T) {
	got := Floats([]uint64{1, 2, 3})
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("floats = %v", got)
	}
}

func TestFprintCDFs(t *testing.T) {
	var sb strings.Builder
	FprintCDFs(&sb, "demo", []Series{
		{Name: "a", CDF: NewCDF([]float64{1, 2, 3})},
		{Name: "a-very-long-series-name-overflow", CDF: NewCDF([]float64{1e9, 2e9})},
	})
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "p50") {
		t.Errorf("output missing parts:\n%s", out)
	}
	if !strings.Contains(out, "e+09") {
		t.Error("large values must use scientific notation")
	}
	var empty strings.Builder
	FprintCDFs(&empty, "none", nil)
	if !strings.Contains(empty.String(), "no data") {
		t.Error("empty series output")
	}
}

func TestTable(t *testing.T) {
	tab := &Table{
		Header: []string{"component", "scope", "frequency"},
		Rows: [][]string{
			{"core beaconing", "global", "minutes"},
			{"lookup", "AS", "seconds"},
		},
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "core beaconing") || !strings.Contains(out, "---") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table lines = %d", len(lines))
	}
}

func TestOrderOfMagnitude(t *testing.T) {
	if om := OrderOfMagnitude(1000, 10); math.Abs(om-2) > 1e-9 {
		t.Errorf("oom = %v", om)
	}
	if !math.IsNaN(OrderOfMagnitude(0, 1)) {
		t.Error("zero input must be NaN")
	}
}

func TestFprintHistogram(t *testing.T) {
	var sb strings.Builder
	FprintHistogram(&sb, "bw", []float64{1, 2, 2, 3, 10}, 3)
	out := sb.String()
	if !strings.Contains(out, "bw") || !strings.Contains(out, "#") {
		t.Errorf("histogram output:\n%s", out)
	}
	var empty strings.Builder
	FprintHistogram(&empty, "none", nil, 3)
	if !strings.Contains(empty.String(), "no data") {
		t.Error("empty histogram output")
	}
	var flat strings.Builder
	FprintHistogram(&flat, "flat", []float64{5, 5, 5}, 3)
	if !strings.Contains(flat.String(), "all 3 samples") {
		t.Error("degenerate histogram output")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{1024, "1.00 KiB"},
		{1536, "1.50 KiB"},
		{4 << 20, "4.00 MiB"},
		{1.25e9, "1.16 GiB"},
		{3 << 40, "3.00 TiB"},
		{1 << 50, "1024.00 TiB"},
	}
	for _, c := range cases {
		if got := FmtBytes(c.in); got != c.want {
			t.Errorf("FmtBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := FmtRate(2048); got != "2.00 KiB/s" {
		t.Errorf("FmtRate(2048) = %q", got)
	}
}
