#!/usr/bin/env bash
# bench_compare.sh OLD.json NEW.json [threshold-pct]
# bench_compare.sh --speedup FILE.json FAST_BENCH SLOW_BENCH MIN_RATIO
#
# Compare mode: compares allocs/op and pkts/s between two benchmark
# capture files produced with
#   go test -json -run '^$' -bench ... -benchmem ... > BENCH_prN.json
# and fails (exit 1) if any benchmark present in BOTH files regressed:
#   - allocs/op grew by more than the threshold (default 20%), or
#   - pkts/s shrank by more than twice the threshold (wall clock on
#     shared CI runners is noisier than allocation counts, so the
#     throughput gate gets double headroom).
# Benchmarks that exist in only one file are reported and skipped —
# capture files from different PRs cover different packages.
#
# Speedup mode: reads one capture file and fails unless
#   pkts/s(FAST_BENCH) >= MIN_RATIO * pkts/s(SLOW_BENCH).
# Both benchmarks come from the same run on the same machine, so the
# ratio is noise-robust even where absolute wall clock is not. CI uses
# this to hold the batched forwarding engine to its >=2x speedup over
# per-packet forwarding with MAC verification on.
set -euo pipefail

# Reassemble the benchmark output lines from the go-test-json stream: the
# Output payload of one logical line is split across several JSON events,
# so concatenate all payloads first and split on the escaped newlines.
# Prints "name metric value" per (benchmark, metric) pair.
extract() {
    awk '
    {
        line = $0
        while (match(line, /"Output":"/)) {
            s = substr(line, RSTART + RLENGTH)
            # The Output value runs to the next unescaped quote.
            out = ""
            while (match(s, /"/)) {
                chunk = substr(s, 1, RSTART - 1)
                out = out chunk
                if (chunk ~ /\\$/) {      # escaped quote, keep scanning
                    out = out "\""
                    s = substr(s, RSTART + 1)
                    continue
                }
                s = substr(s, RSTART + 1)
                break
            }
            buf = buf out
            line = s
        }
    }
    END {
        gsub(/\\t/, "\t", buf)
        n = split(buf, lines, /\\n/)
        for (i = 1; i <= n; i++) {
            ln = lines[i]
            if (ln !~ /^Benchmark[A-Za-z0-9_]/) continue
            nf = split(ln, f, /[ \t]+/)
            if (nf < 4) continue
            name = f[1]
            sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
            for (j = 3; j < nf; j++) {
                if (f[j + 1] == "allocs/op" || f[j + 1] == "pkts/s") {
                    print name, f[j + 1], f[j]
                }
            }
        }
    }' "$1"
}

if [ "${1:-}" = "--speedup" ]; then
    if [ $# -ne 5 ]; then
        echo "usage: $0 --speedup FILE.json FAST_BENCH SLOW_BENCH MIN_RATIO" >&2
        exit 2
    fi
    file=$2 fast=$3 slow=$4 min=$5
    extract "$file" | awk -v fast="$fast" -v slow="$slow" -v min="$min" '
        $2 == "pkts/s" && $1 == fast { f = $3 + 0 }
        $2 == "pkts/s" && $1 == slow { s = $3 + 0 }
        END {
            if (f == 0 || s == 0) {
                printf "error: missing pkts/s for %s or %s\n", fast, slow > "/dev/stderr"
                exit 2
            }
            ratio = f / s
            printf "%s: %.0f pkts/s\n%s: %.0f pkts/s\nspeedup: %.2fx (required >= %sx)\n", \
                fast, f, slow, s, ratio, min
            if (ratio < min + 0) {
                print "FAIL: speedup below required minimum" > "/dev/stderr"
                exit 1
            }
            print "OK"
        }'
    exit $?
fi

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: $0 OLD.json NEW.json [threshold-pct]" >&2
    echo "       $0 --speedup FILE.json FAST_BENCH SLOW_BENCH MIN_RATIO" >&2
    exit 2
fi
old_file=$1
new_file=$2
threshold=${3:-20}

old_data=$(extract "$old_file")
new_data=$(extract "$new_file")

printf '%s\n' "$old_data" "---" "$new_data" | awk -v thr="$threshold" \
    -v old_name="$old_file" -v new_name="$new_file" '
    /^---$/ { section = 1; next }
    section == 0 { old[$1 " " $2] = $3; next }
    { new[$1 " " $2] = $3 }
    END {
        worst = 0
        compared = 0
        for (key in new) {
            if (!(key in old)) continue
            compared++
            split(key, kf, " ")
            metric = kf[2]
            o = old[key] + 0
            n = new[key] + 0
            if (metric == "pkts/s") {
                # Lower throughput is the regression; double headroom
                # for wall-clock noise.
                pct = o > 0 ? (o - n) * 100.0 / o : 0
                lim = 2 * thr
            } else {
                pct = o > 0 ? (n - o) * 100.0 / o : 0
                lim = thr
            }
            marker = ""
            if (pct > lim) { marker = "  REGRESSION"; failed++ }
            printf "%-60s %14.1f -> %14.1f %-10s %+7.1f%%%s\n", kf[1], o, n, metric, pct, marker
            if (pct > worst) worst = pct
        }
        for (key in old) if (!(key in new)) skipped_old++
        for (key in new) if (!(key in old)) skipped_new++
        printf "\ncompared %d benchmark metrics (%s vs %s); %d only in old, %d only in new\n", \
            compared, old_name, new_name, skipped_old + 0, skipped_new + 0
        if (compared == 0) {
            print "error: no common benchmarks to compare" > "/dev/stderr"
            exit 2
        }
        if (failed > 0) {
            printf "FAIL: %d metric(s) regressed beyond their threshold\n", failed > "/dev/stderr"
            exit 1
        }
        printf "OK: no regression beyond thresholds (worst %+.1f%%)\n", worst
    }'
