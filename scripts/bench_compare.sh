#!/usr/bin/env bash
# bench_compare.sh OLD.json NEW.json [threshold-pct]
#
# Compares allocs/op between two benchmark capture files produced with
#   go test -json -run '^$' -bench ... -benchmem ... > BENCH_prN.json
# and fails (exit 1) if any benchmark present in BOTH files regressed its
# allocs/op by more than the threshold (default 20%). Benchmarks that
# exist in only one file are reported and skipped — capture files from
# different PRs cover different packages.
#
# The memory-layout work is guarded on allocations rather than ns/op
# because wall clock on shared CI runners is too noisy to gate on, while
# allocs/op is deterministic for the deterministic-simulation benchmarks.
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: $0 OLD.json NEW.json [threshold-pct]" >&2
    exit 2
fi
old_file=$1
new_file=$2
threshold=${3:-20}

# Reassemble the benchmark output lines from the go-test-json stream: the
# Output payload of one logical line is split across several JSON events,
# so concatenate all payloads first and split on the escaped newlines.
extract() {
    awk '
    {
        line = $0
        while (match(line, /"Output":"/)) {
            s = substr(line, RSTART + RLENGTH)
            # The Output value runs to the next unescaped quote.
            out = ""
            while (match(s, /"/)) {
                chunk = substr(s, 1, RSTART - 1)
                out = out chunk
                if (chunk ~ /\\$/) {      # escaped quote, keep scanning
                    out = out "\""
                    s = substr(s, RSTART + 1)
                    continue
                }
                s = substr(s, RSTART + 1)
                break
            }
            buf = buf out
            line = s
        }
    }
    END {
        gsub(/\\t/, "\t", buf)
        n = split(buf, lines, /\\n/)
        for (i = 1; i <= n; i++) {
            ln = lines[i]
            if (ln !~ /^Benchmark[A-Za-z0-9_]/) continue
            nf = split(ln, f, /[ \t]+/)
            if (nf < 4) continue
            name = f[1]
            sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
            for (j = 3; j < nf; j++) {
                if (f[j + 1] == "allocs/op") {
                    print name, f[j]
                }
            }
        }
    }' "$1"
}

old_data=$(extract "$old_file")
new_data=$(extract "$new_file")

printf '%s\n' "$old_data" "---" "$new_data" | awk -v thr="$threshold" \
    -v old_name="$old_file" -v new_name="$new_file" '
    /^---$/ { section = 1; next }
    section == 0 { old[$1] = $2; next }
    { new[$1] = $2 }
    END {
        worst = 0
        compared = 0
        for (name in new) {
            if (!(name in old)) continue
            compared++
            o = old[name] + 0
            n = new[name] + 0
            pct = o > 0 ? (n - o) * 100.0 / o : 0
            marker = ""
            if (pct > thr) { marker = "  REGRESSION"; failed++ }
            printf "%-60s %10d -> %10d allocs/op  %+7.1f%%%s\n", name, o, n, pct, marker
            if (pct > worst) worst = pct
        }
        for (name in old) if (!(name in new)) skipped_old++
        for (name in new) if (!(name in old)) skipped_new++
        printf "\ncompared %d benchmarks (%s vs %s); %d only in old, %d only in new\n", \
            compared, old_name, new_name, skipped_old + 0, skipped_new + 0
        if (compared == 0) {
            print "error: no common benchmarks to compare" > "/dev/stderr"
            exit 2
        }
        if (failed > 0) {
            printf "FAIL: %d benchmark(s) regressed allocs/op by more than %d%%\n", failed, thr > "/dev/stderr"
            exit 1
        }
        printf "OK: no allocs/op regression above %d%% (worst %+.1f%%)\n", thr, worst
    }'
