#!/bin/sh
# check_coverage.sh — per-package coverage floors.
#
# Reads `go test -cover ./...` output on stdin, prints a summary table,
# and fails if any package with a floor regresses below it. Floors are
# set ~2 points below the measured baseline so ordinary refactoring
# noise passes but deleting a test file does not. When you raise a
# package's coverage, raise its floor here in the same PR.
#
# Usage: go test -cover ./... | scripts/check_coverage.sh

floors='
scionmpr/cmd/beaconsim 22
scionmpr/cmd/chaossim 56
scionmpr/cmd/pathserve 59
scionmpr/cmd/topogen 25
scionmpr/cmd/trafficsim 46
scionmpr/internal/addr 92
scionmpr/internal/beacon 90
scionmpr/internal/bgp 87
scionmpr/internal/bgpsec 88
scionmpr/internal/chaos 59
scionmpr/internal/combinator 89
scionmpr/internal/core 63
scionmpr/internal/dataplane 80
scionmpr/internal/deploy 91
scionmpr/internal/experiments 87
scionmpr/internal/graphalg 97
scionmpr/internal/metrics 95
scionmpr/internal/pathdb 83
scionmpr/internal/pathsrv 91
scionmpr/internal/seg 77
scionmpr/internal/sig 93
scionmpr/internal/slayers 88
scionmpr/internal/sim 77
scionmpr/internal/strategy 96
scionmpr/internal/telemetry 88
scionmpr/internal/topology 93
scionmpr/internal/traffic 88
scionmpr/internal/trust 89
scionmpr/scion 83
'

awk -v floors="$floors" '
BEGIN {
    n = split(floors, lines, "\n")
    for (i = 1; i <= n; i++) {
        if (split(lines[i], f, " ") == 2) floor[f[1]] = f[2] + 0
    }
    fail = 0
}
/coverage: [0-9.]+% of statements/ {
    pkg = ($1 == "ok") ? $2 : $1
    for (i = 1; i <= NF; i++) {
        if ($i == "coverage:") { pct = $(i + 1) + 0; break }
    }
    seen[pkg] = 1
    if (pkg in floor) {
        if (pct < floor[pkg]) {
            printf "FAIL  %-34s %6.1f%%  (floor %d%%)\n", pkg, pct, floor[pkg]
            fail = 1
        } else {
            printf "ok    %-34s %6.1f%%  (floor %d%%)\n", pkg, pct, floor[pkg]
        }
    } else {
        printf "      %-34s %6.1f%%  (no floor)\n", pkg, pct
    }
}
END {
    missing = 0
    for (pkg in floor) {
        if (!(pkg in seen)) {
            printf "FAIL  %-34s  missing from test output (floor %d%%)\n", pkg, floor[pkg]
            missing = 1
        }
    }
    if (fail || missing) {
        print "coverage check failed"
        exit 1
    }
    print "coverage check passed"
}
'
