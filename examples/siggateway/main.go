// SIG gateway: the bank deployment of paper §3.1 and §3.4. Branch
// offices with ordinary IP hosts (no SCION stack) sit behind customer-
// premise SIGs; the data centers behind another SIG. Legacy IPv4 packets
// are encapsulated into SCION packets, tunneled across the demo network,
// and decapsulated at the far side — "transparent IP-to-SCION
// conversion", Case b of Figure 3.
//
// It also prints the connection-count economics that motivated the first
// deployment: N branches x K data centers need N*K leased lines but only
// N+K SCION connections.
//
// Run with: go run ./examples/siggateway
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/combinator"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/seg"
	"scionmpr/internal/sig"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

var (
	a1 = addr.MustIA(1, 0xff00_0000_0101)
	a2 = addr.MustIA(1, 0xff00_0000_0102)
	// Branch ASes (bank offices) and the data-center AS.
	branchASes = []addr.IA{
		addr.MustIA(1, 0xff00_0000_0103), // A-3
		addr.MustIA(1, 0xff00_0000_0106), // A-6
	}
	dcAS = addr.MustIA(1, 0xff00_0000_0104) // A-4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "siggateway:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := topology.Demo()
	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		return err
	}

	// Control plane for ISD 1: intra-ISD beaconing for up/down segments,
	// core beaconing for the A-1 <-> A-2 core segments (a branch homed at
	// A-1 reaching a data center homed at A-2 needs all three).
	runMode := func(mode beacon.Mode) (*beacon.RunResult, error) {
		cfg := beacon.DefaultRunConfig(topo, mode, core.NewDiversity(core.DefaultParams(5)), 20)
		cfg.Duration = 2 * time.Hour
		cfg.Infra = infra
		return beacon.Run(cfg)
	}
	intraRun, err := runMode(beacon.IntraMode)
	if err != nil {
		return err
	}
	coreRun, err := runMode(beacon.CoreMode)
	if err != nil {
		return err
	}
	terminate := func(r *beacon.RunResult, origin, at addr.IA) []*seg.PCB {
		var out []*seg.PCB
		for _, e := range r.Servers[at].Store().Entries(r.End, origin) {
			t, err := e.PCB.Extend(infra.SignerFor(at), addr.IA{}, e.Ingress, 0, nil, 1472)
			if err == nil {
				out = append(out, t)
			}
		}
		return out
	}
	isdCores := []addr.IA{a1, a2}
	// Paths between any two leaf ASes of ISD 1, via any core pair.
	pathsBetween := func(src, dst addr.IA) []*dataplane.FwdPath {
		var ups, downs, coreSegs []*seg.PCB
		for _, c := range isdCores {
			ups = append(ups, terminate(intraRun, c, src)...)
			downs = append(downs, terminate(intraRun, c, dst)...)
		}
		for _, cu := range isdCores {
			for _, cd := range isdCores {
				if cu != cd {
					coreSegs = append(coreSegs, terminate(coreRun, cd, cu)...)
				}
			}
		}
		var out []*dataplane.FwdPath
		for _, c := range combinator.AllPaths(ups, coreSegs, downs) {
			if fp, err := dataplane.Authorize(c, infra.ForwardingKey); err == nil {
				out = append(out, fp)
			}
		}
		return out
	}

	// Data plane + SIGs. The ASMap assigns one /16 per site.
	var s sim.Simulator
	net := sim.NewNetwork(&s, topo, 5*time.Millisecond)
	fabric := dataplane.NewFabric(net, infra.ForwardingKey)

	var asmap sig.ASMap
	asmap.Add(netip.MustParsePrefix("10.3.0.0/16"), branchASes[0])
	asmap.Add(netip.MustParsePrefix("10.6.0.0/16"), branchASes[1])
	asmap.Add(netip.MustParsePrefix("10.4.0.0/16"), dcAS)

	newGW := func(ia addr.IA, b byte, mode sig.Mode) *sig.Gateway {
		return sig.NewGateway(fabric, addr.HostIP4(ia, 10, b, 0, 1), mode, &asmap,
			func(dst addr.IA) []*dataplane.FwdPath { return pathsBetween(ia, dst) })
	}
	branchGWs := []*sig.Gateway{newGW(branchASes[0], 3, sig.CPE), newGW(branchASes[1], 6, sig.CPE)}
	dcGW := newGW(dcAS, 4, sig.CarrierGrade)

	received := map[string]int{}
	dcGW.OnDeliverIP(func(p sig.IPPacket) { received[p.Src.String()]++ })

	// Each branch host sends 3 legacy IP packets to the DC.
	for bi, gw := range branchGWs {
		for host := 1; host <= 3; host++ {
			pkt := sig.IPPacket{
				Src:     netip.AddrFrom4([4]byte{10, byte(3 + bi*3), 0, byte(host)}),
				Dst:     netip.MustParseAddr("10.4.0.99"),
				Payload: []byte(fmt.Sprintf("transaction-%d-%d", bi, host)),
			}
			if err := gw.HandleIP(pkt); err != nil {
				return err
			}
		}
	}
	s.Run()

	total := 0
	for src, n := range received {
		fmt.Printf("data center received %d packets from %s\n", n, src)
		total += n
	}
	if total != 6 {
		return fmt.Errorf("delivered %d of 6 packets", total)
	}
	for _, gw := range branchGWs {
		fmt.Printf("branch SIG %s: encapsulated=%d (per-destination: %v)\n",
			gw.Local, gw.Encapsulated, gw.PerDstAS)
	}
	fmt.Printf("DC SIG %s (%s): decapsulated=%d\n", dcGW.Local, dcGW.Mode, dcGW.Decapsulated)

	// The §3.1 economics.
	n, k := 20, 3
	leased, scionConns := sig.ConnectionsSaved(n, k)
	fmt.Printf("\nleased-line economics (§3.1): %d branches x %d data centers\n", n, k)
	fmt.Printf("  leased lines needed: %d\n", leased)
	fmt.Printf("  SCION connections:   %d (%.0f%% fewer; redundancy widens the gap)\n",
		scionConns, 100*(1-float64(scionConns)/float64(leased)))
	return nil
}
