// Quickstart: the full SCION control-and-data-plane round trip on the
// paper's Figure 1 demo network (3 ISDs, 7 core ASes).
//
//  1. Run core and intra-ISD beaconing to discover path segments.
//  2. Register segments at path servers and look them up like an
//     endpoint would (up-segments locally, core- and down-segments from
//     the core path server).
//  3. Combine up + core + down segments into end-to-end paths, including
//     shortcuts and peering shortcuts.
//  4. Authorize a forwarding path (hop-field MACs) and send a packet from
//     ISD 2 (B-3) to ISD 1 (A-6) through the simulated data plane.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/combinator"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/pathdb"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

var (
	a1 = addr.MustIA(1, 0xff00_0000_0101)
	a2 = addr.MustIA(1, 0xff00_0000_0102)
	a6 = addr.MustIA(1, 0xff00_0000_0106)
	b2 = addr.MustIA(2, 0xff00_0000_0202)
	b3 = addr.MustIA(2, 0xff00_0000_0203)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := topology.Demo()
	fmt.Println("topology:", topo.ComputeStats())

	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		return err
	}

	// 1. Beaconing: core PCBs among the 7 core ASes, intra-ISD PCBs down
	// each ISD's provider-customer hierarchy.
	beaconRun := func(mode beacon.Mode) (*beacon.RunResult, error) {
		cfg := beacon.DefaultRunConfig(topo, mode, core.NewDiversity(core.DefaultParams(5)), 20)
		cfg.Duration = 2 * time.Hour
		cfg.Infra = infra
		cfg.Verify = true
		return beacon.Run(cfg)
	}
	coreRun, err := beaconRun(beacon.CoreMode)
	if err != nil {
		return err
	}
	intraRun, err := beaconRun(beacon.IntraMode)
	if err != nil {
		return err
	}
	fmt.Printf("beaconing done: core bytes=%d intra bytes=%d\n",
		coreRun.TotalOverheadBytes(), intraRun.TotalOverheadBytes())

	// Terminate stored beacons into registrable path segments.
	terminate := func(run *beacon.RunResult, origin, at addr.IA) []*seg.PCB {
		var out []*seg.PCB
		for _, e := range run.Servers[at].Store().Entries(run.End, origin) {
			t, err := e.PCB.Extend(infra.SignerFor(at), addr.IA{}, e.Ingress, 0, nil, 1472)
			if err == nil {
				out = append(out, t)
			}
		}
		return out
	}
	now := intraRun.End

	// 2. Path servers: B-3 registers its up-segments locally and its
	// down-segments at B-2 (its ISD's core); same for A-6 at A-1/A-2.
	// The source-side path server then performs the three lookups.
	localPS := pathdb.NewServer(b3, false, sim.Time(time.Hour))
	corePSB2 := pathdb.NewServer(b2, true, sim.Time(time.Hour))
	corePSA2 := pathdb.NewServer(a2, true, sim.Time(time.Hour))
	for _, s := range terminate(intraRun, b2, b3) {
		if err := localPS.RegisterUp(now, s); err != nil {
			return err
		}
	}
	for _, s := range terminate(intraRun, a2, a6) {
		if err := corePSA2.RegisterDown(now, s); err != nil {
			return err
		}
	}
	for _, s := range terminate(coreRun, a2, b2) {
		if err := corePSB2.RegisterCore(now, s); err != nil {
			return err
		}
	}

	ups := localPS.LookupUp(now)
	cores := corePSB2.LookupCore(now, a2)
	downs := corePSA2.LookupDown(now, a6)
	fmt.Printf("lookups: %d up-segments, %d core-segments, %d down-segments\n",
		len(ups), len(cores), len(downs))

	// 3. Combine segments into end-to-end paths.
	paths := combinator.AllPaths(ups, cores, downs)
	if len(paths) == 0 {
		return fmt.Errorf("no end-to-end paths from %s to %s", b3, a6)
	}
	fmt.Printf("end-to-end paths %s -> %s: %d\n", b3, a6, len(paths))
	for i, p := range paths {
		if err := p.Check(topo); err != nil {
			return fmt.Errorf("path %d invalid: %w", i, err)
		}
	}
	fmt.Println("  best:", paths[0])

	// 4. Data plane: authorize hop fields and send a packet.
	var s sim.Simulator
	net := sim.NewNetwork(&s, topo, 5*time.Millisecond)
	fabric := dataplane.NewFabric(net, infra.ForwardingKey)
	fp, err := dataplane.Authorize(paths[0], infra.ForwardingKey)
	if err != nil {
		return err
	}
	var delivered *dataplane.Packet
	fabric.OnDeliver(a6, func(pkt *dataplane.Packet) { delivered = pkt })
	pkt := &dataplane.Packet{
		Src:     addr.HostIP4(b3, 10, 2, 3, 1),
		Dst:     addr.HostIP4(a6, 10, 1, 6, 1),
		Path:    fp,
		Payload: []byte("hello, path-aware internet"),
	}
	if err := fabric.Inject(pkt); err != nil {
		return err
	}
	s.Run()
	if delivered == nil {
		return fmt.Errorf("packet not delivered")
	}
	fmt.Printf("delivered %q from %s to %s over %d hops in %v virtual time\n",
		delivered.Payload, delivered.Src, delivered.Dst, len(fp.Hops), s.Now())
	// A-1 stays untouched: the chosen path is policy-compliant and only
	// crosses the on-path control plane, no global state anywhere.
	fmt.Println("core AS", a1, "forwarded", fabric.Forwarded, "packets total (stateless PCFS)")
	return nil
}
