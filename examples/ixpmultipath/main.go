// IXP multipath: the enhanced IXP deployment model of paper §3.5 /
// Figure 4. Instead of acting as an opaque "big switch", the IXP exposes
// its internal topology in the SCION control plane: each IXP site is its
// own SCION AS and the redundant inter-site links become visible,
// selectable inter-domain links. Customers then use SCION multipath to
// route through the IXP fabric and fail over between sites instantly.
//
// Topology (cores IXP-1..IXP-4 as the IXP sites, Figure 4 shape):
//
//	AS1 -- Site1 ===== Site2 -- AS2
//	        |  \     /  |
//	        |   Site3   |        (redundant inter-site links)
//	        |  /     \  |
//	AS3 -- Site3      Site4 -- AS4
//
// Run with: go run ./examples/ixpmultipath
package main

import (
	"fmt"
	"os"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/combinator"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

func ia(as uint64) addr.IA { return addr.MustIA(1, addr.AS(as)) }

// buildIXP constructs the Figure 4 network: 4 IXP site ASes (core,
// fully exposed fabric with parallel inter-site links) and 4 customer
// ASes, one per site.
func buildIXP() *topology.Graph {
	g := topology.New()
	sites := make([]addr.IA, 4)
	for i := range sites {
		sites[i] = ia(uint64(0x100 + i + 1))
		g.AddAS(sites[i], true)
	}
	customers := make([]addr.IA, 4)
	for i := range customers {
		customers[i] = ia(uint64(0x200 + i + 1))
		g.AddAS(customers[i], false)
	}
	// Redundant site mesh: ring plus both diagonals, one edge doubled.
	g.MustConnect(sites[0], sites[1], topology.Core)
	g.MustConnect(sites[0], sites[1], topology.Core) // parallel link
	g.MustConnect(sites[1], sites[3], topology.Core)
	g.MustConnect(sites[3], sites[2], topology.Core)
	g.MustConnect(sites[2], sites[0], topology.Core)
	g.MustConnect(sites[0], sites[3], topology.Core)
	g.MustConnect(sites[1], sites[2], topology.Core)
	// Customers attach to their site redundantly (Figure 4 shows two
	// attachment circuits per customer).
	for i := range customers {
		g.MustConnect(sites[i], customers[i], topology.ProviderOf)
		g.MustConnect(sites[i], customers[i], topology.ProviderOf)
	}
	return g
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ixpmultipath:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := buildIXP()
	fmt.Println("IXP topology:", topo.ComputeStats())
	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		return err
	}

	// Control plane: core beaconing across the exposed IXP fabric plus
	// intra-ISD beaconing to the customers.
	runMode := func(mode beacon.Mode) (*beacon.RunResult, error) {
		cfg := beacon.DefaultRunConfig(topo, mode, core.NewDiversity(core.DefaultParams(5)), 30)
		cfg.Duration = 2 * time.Hour
		cfg.Infra = infra
		return beacon.Run(cfg)
	}
	coreRun, err := runMode(beacon.CoreMode)
	if err != nil {
		return err
	}
	intraRun, err := runMode(beacon.IntraMode)
	if err != nil {
		return err
	}

	src, dst := ia(0x201), ia(0x204) // customer at Site1 -> customer at Site4
	site1, site4 := ia(0x101), ia(0x104)

	terminate := func(run *beacon.RunResult, origin, at addr.IA) []*seg.PCB {
		var out []*seg.PCB
		for _, e := range run.Servers[at].Store().Entries(run.End, origin) {
			t, err := e.PCB.Extend(infra.SignerFor(at), addr.IA{}, e.Ingress, 0, nil, 1472)
			if err == nil {
				out = append(out, t)
			}
		}
		return out
	}
	ups := terminate(intraRun, site1, src)
	cores := terminate(coreRun, site4, site1)
	downs := terminate(intraRun, site4, dst)
	paths := combinator.AllPaths(ups, cores, downs)
	if len(paths) == 0 {
		return fmt.Errorf("no paths through the IXP fabric")
	}
	fmt.Printf("paths %s -> %s through the exposed IXP fabric: %d\n", src, dst, len(paths))
	for _, p := range paths {
		if err := p.Check(topo); err != nil {
			return err
		}
	}

	// Multipath capacity through the fabric (Figure 6b metric, applied
	// to the IXP): how many site-to-site links can carry traffic in
	// parallel, versus a "big switch" single path.
	var pls [][]graphalg.PathLink
	for _, p := range paths {
		var pl []graphalg.PathLink
		for _, lk := range p.Links() {
			if l := topo.LinkByIf(lk.IA, lk.If); l != nil {
				pl = append(pl, graphalg.PathLink{A: l.A, B: l.B, ID: l.ID})
			}
		}
		pls = append(pls, pl)
	}
	capacity := graphalg.UnionFlow(pls, src, dst)
	optimum := graphalg.OptimalFlow(topo, src, dst)
	fmt.Printf("multipath capacity via exposed fabric: %d link-multiples (optimum %d, big-switch 1)\n",
		capacity, optimum)

	// Fast failover between IXP sites: stream packets, kill the direct
	// Site1-Site4 inter-site link mid-stream.
	var s sim.Simulator
	net := sim.NewNetwork(&s, topo, time.Millisecond)
	fabric := dataplane.NewFabric(net, infra.ForwardingKey)
	ep := dataplane.NewEndpoint(fabric, addr.HostIP4(src, 10, 1, 0, 1))
	var fps []*dataplane.FwdPath
	for _, p := range paths {
		if fp, err := dataplane.Authorize(p, infra.ForwardingKey); err == nil {
			fps = append(fps, fp)
		}
	}
	ep.SetPaths(fps)
	delivered := 0
	fabric.OnDeliver(dst, func(*dataplane.Packet) { delivered++ })

	direct := topo.LinksBetween(site1, site4)[0]
	for i := 0; i < 20; i++ {
		s.Schedule(time.Duration(i)*5*time.Millisecond, func() {
			_ = ep.Send(addr.HostIP4(dst, 10, 4, 0, 1), []byte("via-ixp"))
		})
	}
	s.Schedule(42*time.Millisecond, func() {
		fmt.Printf("t=%v  inter-site link %s FAILED\n", s.Now(), direct)
		fabric.FailLink(direct.ID)
	})
	s.Run()
	fmt.Printf("streamed 20 packets: delivered=%d failovers=%d\n", delivered, ep.Failovers)
	if ep.Failovers > 0 {
		fmt.Println("traffic re-routed over another IXP site without any help from the IXP fabric")
	} else {
		fmt.Println("active path did not traverse the failed link; redundancy held")
	}
	return nil
}
