// Multipath transfer: one large file-sized transfer striped across the k
// disjoint paths SCION hands the endpoint (paper §3: endpoints pick and
// combine paths; capacity aggregates across them). The transfer starts on
// every available path at once — weighted by each path's bottleneck
// capacity — and halfway through, one of the carrying links fails. The
// SCMP revocation reaches the sender within one RTT; the affected path is
// abandoned mid-transfer and its share shifts to the survivors, with no
// pause for re-convergence.
//
// Run with: go run ./examples/multipathtransfer
package main

import (
	"fmt"
	"os"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/metrics"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/traffic"
	"scionmpr/scion"
)

var (
	a6 = addr.MustIA(1, 0xff00_0000_0106)
	b3 = addr.MustIA(2, 0xff00_0000_0203)
)

const transferSize = 256 << 20 // 256 MiB

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multipathtransfer:", err)
		os.Exit(1)
	}
}

func run() error {
	// Full control-plane bootstrap: beaconing, segment registration, path
	// servers. The endpoint in B-3 then looks up its paths to A-6.
	n, err := scion.NewNetwork(topology.Demo(), scion.DefaultOptions())
	if err != nil {
		return err
	}
	eng, err := traffic.NewEngine(traffic.Config{
		Clock:    n.Clock(),
		Net:      n.Fabric().Net,
		Fabric:   n.Fabric(),
		Provider: n.Paths,
		// 1 Gbps on every link direction.
		Links: traffic.NewLinkModel(traffic.UniformCapacity(1.25e8)),
	})
	if err != nil {
		return err
	}

	f := eng.Add(traffic.FlowSpec{ID: 1, Src: b3, Dst: a6, Size: transferSize})

	// Pick the link to fail: the second link of the first path, so the
	// revocation has to travel one hop back to the sender.
	fps, err := n.Paths(b3, a6)
	if err != nil {
		return err
	}
	fmt.Printf("transfer: %s from %s to %s (%d candidate paths, striping over the best 8)\n",
		metrics.FmtBytes(transferSize), b3, a6, len(fps))
	refs, err := fps[0].LinkRefs(n.Topo)
	if err != nil {
		return err
	}
	target := refs[1].Link

	var revokedAt sim.Time
	eng.OnRevocation = func(_ *traffic.Flow, link topology.LinkID) {
		if link == target.ID && revokedAt == 0 {
			revokedAt = n.Clock().Now()
			fmt.Printf("t=%-12v SCMP revocation for link %s arrived; path abandoned at %s/%s\n",
				time.Duration(revokedAt), target, metrics.FmtBytes(float64(f.Sent())),
				metrics.FmtBytes(transferSize))
		}
	}

	// Fail the link once roughly half the transfer is on the wire.
	const failAt = 600 * time.Millisecond
	n.Clock().Schedule(failAt, func() {
		fmt.Printf("t=%-12v link %s FAILED mid-transfer\n", failAt, target)
		links := n.Topo.LinksBetween(target.A, target.B)
		for i, l := range links {
			if l.ID == target.ID {
				if _, err := n.FailLink(target.A, target.B, i); err != nil {
					fmt.Fprintln(os.Stderr, "FailLink:", err)
				}
			}
		}
	})

	eng.Run()

	if !f.Done() {
		return fmt.Errorf("transfer did not complete: sent=%d failed=%v", f.Sent(), f.Failed())
	}
	if revokedAt == 0 {
		return fmt.Errorf("the failed link never produced a revocation")
	}

	fmt.Printf("\nper-path goodput over the whole transfer (fct %v):\n", f.FCT())
	for i, st := range f.PathStats() {
		status := "survived"
		if st.Revoked {
			status = "REVOKED "
		}
		fmt.Printf("  path %d: %d hops, %v one-way, bottleneck %s  carried %8s (%s)  %s\n",
			i, st.Hops, st.Delay, metrics.FmtRate(st.Bottleneck),
			metrics.FmtBytes(float64(st.Sent)),
			metrics.FmtRate(float64(st.Sent)/f.FCT().Seconds()), status)
	}
	fmt.Printf("\ntransfer complete: %s in %v (%s aggregate; a single 1 Gbps path needs %v)\n",
		metrics.FmtBytes(float64(f.Sent())), f.FCT(),
		metrics.FmtRate(f.Goodput(sim.Time(f.FCT()))),
		time.Duration(float64(transferSize)/1.25e8*float64(time.Second)).Round(time.Millisecond))
	fmt.Printf("failover cost: %s retransmitted, %d path switches, revocation -> abandonment within one RTT\n",
		metrics.FmtBytes(float64(f.Lost())), f.PathSwitches())
	return nil
}
