// Leased line replacement using only the public API (package scion): a
// bank connects a branch to its data center over the SCION network
// instead of a leased line (paper §3.1). The example bootstraps a full
// network in three calls, streams transactions, kills the primary link
// mid-stream, and shows the connection surviving on a disjoint path —
// the availability property customers bought leased lines for.
//
// Run with: go run ./examples/leasedline
package main

import (
	"fmt"
	"os"
	"time"

	"scionmpr/scion"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leasedline:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Network bootstrap: the Figure 1 topology, diversity beaconing.
	net, err := scion.NewNetwork(scion.DemoTopology(), scion.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("network bootstrapped: %d ASes, control-plane cost %d bytes\n",
		net.Topo.NumASes(), net.ControlPlaneBytes())

	branchIA := scion.MustIA(1, 0xff00_0000_0106) // A-6
	dcIA := scion.MustIA(1, 0xff00_0000_0104)     // A-4

	// 2. Endpoints.
	branch, err := net.Host(branchIA, 10, 6, 0, 1)
	if err != nil {
		return err
	}
	dc, err := net.Host(dcIA, 10, 4, 0, 1)
	if err != nil {
		return err
	}
	received := 0
	dc.OnReceive(func(from scion.HostAddr, payload []byte) {
		received++
	})

	// Path diversity available to the branch:
	paths, err := net.Paths(branchIA, dcIA)
	if err != nil {
		return err
	}
	fmt.Printf("branch -> data center: %d paths available (multi-path)\n", len(paths))

	// 3. Stream 30 "transactions", one every 10 ms; at t=85ms the primary
	// link fails.
	for i := 0; i < 30; i++ {
		i := i
		net.Clock().Schedule(time.Duration(i)*10*time.Millisecond, func() {
			_ = branch.Send(dc.Addr, []byte(fmt.Sprintf("txn-%03d", i)))
		})
	}
	var failedAt time.Duration
	net.Clock().Schedule(85*time.Millisecond, func() {
		hops := branch.ActivePathHops()
		if len(hops) < 2 {
			return
		}
		link, err := net.FailLink(hops[0], hops[1], 0)
		if err == nil {
			failedAt = time.Duration(net.Clock().Now())
			fmt.Printf("t=%v  primary link %s failed\n", failedAt, link)
		}
	})
	net.Run()

	sent, failovers := branch.Stats()
	fmt.Printf("sent=%d received=%d failovers=%d\n", sent, received, failovers)
	if failovers == 0 {
		return fmt.Errorf("expected a failover")
	}
	lost := int(sent) - received
	fmt.Printf("transactions lost during failover: %d (no re-convergence, no operator action)\n", lost)
	fmt.Println("the SCION connection replaced the leased line and survived the cut")
	return nil
}
