// Failover: the leased-line replacement story of paper §3.1 — a bank
// branch (host in A-6) streams traffic to a data center (host in A-4)
// over SCION. Mid-stream, the active path's first inter-domain link
// fails. The border router observing the failure emits an SCMP
// revocation; the endpoint switches to a disjoint path as soon as the
// message arrives — no route re-convergence, sub-RTT failover.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"os"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/combinator"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

var (
	a2 = addr.MustIA(1, 0xff00_0000_0102)
	a4 = addr.MustIA(1, 0xff00_0000_0104)
	a6 = addr.MustIA(1, 0xff00_0000_0106)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := topology.Demo()
	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		return err
	}

	// Control plane: intra-ISD beaconing gives A-6 its up-segments and
	// A-4 its down-segments.
	cfg := beacon.DefaultRunConfig(topo, beacon.IntraMode, core.NewDiversity(core.DefaultParams(5)), 20)
	cfg.Duration = 2 * time.Hour
	cfg.Infra = infra
	run, err := beacon.Run(cfg)
	if err != nil {
		return err
	}
	terminate := func(origin, at addr.IA) []*seg.PCB {
		var out []*seg.PCB
		for _, e := range run.Servers[at].Store().Entries(run.End, origin) {
			t, err := e.PCB.Extend(infra.SignerFor(at), addr.IA{}, e.Ingress, 0, nil, 1472)
			if err == nil {
				out = append(out, t)
			}
		}
		return out
	}
	cands := combinator.AllPaths(terminate(a2, a6), nil, terminate(a2, a4))
	if len(cands) < 2 {
		return fmt.Errorf("need at least 2 candidate paths, got %d", len(cands))
	}
	fmt.Printf("candidate paths %s -> %s: %d\n", a6, a4, len(cands))
	for _, p := range cands {
		fmt.Println("  ", p)
	}

	// Data plane.
	var s sim.Simulator
	net := sim.NewNetwork(&s, topo, 5*time.Millisecond)
	fabric := dataplane.NewFabric(net, infra.ForwardingKey)

	branch := dataplane.NewEndpoint(fabric, addr.HostIP4(a6, 10, 6, 0, 1))
	var fps []*dataplane.FwdPath
	for _, c := range cands {
		fp, err := dataplane.Authorize(c, infra.ForwardingKey)
		if err != nil {
			return err
		}
		fps = append(fps, fp)
	}
	branch.SetPaths(fps)
	dc := addr.HostIP4(a4, 10, 4, 0, 1)

	delivered, lost := 0, 0
	fabric.OnDeliver(a4, func(*dataplane.Packet) { delivered++ })
	var revokedAt, recoveredAt sim.Time
	branch.OnRevocation = func(link seg.LinkKey) {
		revokedAt = s.Now()
		fmt.Printf("t=%v  SCMP revocation received for link %s; switching path\n", s.Now(), link)
	}

	// Stream one packet every 10 ms; at t=95 ms the first link of the
	// active path fails.
	activeFirst := branch.ActivePath().Hops[0]
	failLink := topo.LinkByIf(activeFirst.Hop.IA, activeFirst.Hop.Out)
	fmt.Printf("active path: %d hops; will fail link %s at t=95ms\n", len(branch.ActivePath().Hops), failLink)

	for i := 0; i < 40; i++ {
		i := i
		s.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			before := delivered
			if err := branch.Send(dc, []byte{byte(i)}); err != nil {
				lost++
				return
			}
			_ = before
		})
	}
	s.Schedule(95*time.Millisecond, func() {
		fmt.Printf("t=%v  link %s FAILED\n", s.Now(), failLink)
		fabric.FailLink(failLink.ID)
	})
	// Observe recovery: first delivery after the revocation.
	prevDelivered := 0
	s.Every(0, time.Millisecond, sim.Time(600*time.Millisecond), func(now sim.Time) {
		if revokedAt > 0 && recoveredAt == 0 && delivered > prevDelivered {
			recoveredAt = now
		}
		prevDelivered = delivered
	})
	s.Run()

	fmt.Printf("\nresults: sent=%d delivered=%d dropped-at-failed-link=%d failovers=%d\n",
		branch.Sent, delivered, int(fabric.Revocations), branch.Failovers)
	if branch.Failovers == 0 {
		return fmt.Errorf("no failover happened")
	}
	fmt.Printf("revocation received at t=%v; traffic restored at t=%v (delta %v)\n",
		revokedAt, recoveredAt, time.Duration(recoveredAt-revokedAt))
	fmt.Println("the new path avoids the failed link; no BGP-style re-convergence was needed")
	return nil
}
