// Package scionmpr is a from-scratch Go reproduction of "Deployment and
// Scalability of an Inter-Domain Multi-Path Routing Infrastructure"
// (CoNEXT 2021): the SCION control plane (beaconing, path servers, PKI),
// data plane (packet-carried forwarding state, SCMP, SIG), the paper's
// path-diversity-based path construction algorithm, and the BGP/BGPsec
// baselines, together with the simulators and experiment drivers that
// regenerate every table and figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for reproduction results.
// The benchmarks in bench_test.go regenerate each experiment's numbers;
// the runnable entry points live under cmd/ and examples/.
package scionmpr
